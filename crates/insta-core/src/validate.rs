//! Snapshot validation: the contract every [`InstaInit`] must satisfy
//! before the kernels may index it.
//!
//! The engine's hot paths are written against invariants the exporter
//! guarantees — CSR monotonicity, strictly-increasing levels along arcs,
//! in-range node/leaf references, finite statistics — and they index
//! arrays without bounds checks *logically* relying on them (Rust still
//! bounds-checks, so violations panic instead of corrupting memory; they
//! must never reach the kernels either way). A snapshot cloned from an
//! external tool is untrusted: this module checks the full contract in a
//! single O(nodes + arcs + endpoints + tree) pass and either rejects
//! ([`ValidationMode::Strict`]), fixes what is fixable with a report
//! ([`ValidationMode::Repair`]), or skips the pass entirely
//! ([`ValidationMode::Trust`], the pre-validation behavior with zero
//! overhead for callers that produced the snapshot themselves).
//!
//! Issue severities:
//!
//! * **fatal** — the snapshot's structure is unusable (broken CSR, order
//!   not a permutation): rejected in Strict *and* Repair.
//! * **repairable** — element-level damage with a safe local fix: arcs
//!   dropped (out-of-range parent, level inversion, duplicates), stats
//!   clamped (non-finite μ → 0, invalid σ → 0), endpoints/sources dropped
//!   or re-numbered, leaves cleared to [`NO_LEAF`], the clock tree
//!   disabled when inconsistent.
//! * **warning** — suspicious but representable (an endpoint no path can
//!   reach): reported, never rejected.

use crate::error::InstaError;
use insta_refsta::export::{InstaInit, NO_LEAF};

/// When and how [`InstaEngine::new`](crate::InstaEngine::new) validates
/// its snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ValidationMode {
    /// Validate and reject on any fatal or repairable issue (default).
    #[default]
    Strict,
    /// Validate, fix repairable issues, reject only fatal ones. The fixes
    /// are recorded in the engine's
    /// [`validation_report`](crate::InstaEngine::validation_report).
    Repair,
    /// Skip validation (zero overhead). Malformed snapshots will panic
    /// the constructor or kernels exactly as before this module existed;
    /// only use it for snapshots this process exported itself.
    Trust,
}

/// Issue severity class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Unusable structure; rejected in every validating mode.
    Fatal,
    /// Locally fixable; rejected in Strict, fixed in Repair.
    Repairable,
    /// Reported only.
    Warning,
}

/// One validation finding.
#[derive(Debug, Clone, PartialEq)]
pub enum Issue {
    /// Engine configuration is invalid (e.g. `top_k == 0`).
    BadConfig {
        /// What is wrong.
        message: String,
    },
    /// `n_nodes` disagrees with the `order` array length.
    NodeCountMismatch {
        /// Declared node count.
        n_nodes: usize,
        /// Actual `order` length.
        order_len: usize,
    },
    /// `order` is not a permutation of `0..n_nodes`.
    OrderNotPermutation {
        /// First offending entry (out of range or repeated).
        entry: u32,
    },
    /// The level CSR is malformed (empty, non-monotone, or not covering
    /// all nodes).
    LevelCsrBroken {
        /// What is wrong.
        detail: String,
    },
    /// The fanin CSR is malformed.
    FaninCsrBroken {
        /// What is wrong.
        detail: String,
    },
    /// An arc references a parent outside the node range.
    ArcParentOutOfRange {
        /// Expanded arc index.
        arc: usize,
        /// The out-of-range parent.
        parent: u32,
    },
    /// An incremental update delta references a graph arc the snapshot
    /// does not have (caller-supplied id past `n_graph_arcs`).
    DeltaArcOutOfRange {
        /// Position of the delta in the caller's batch.
        index: usize,
        /// The out-of-range graph-arc id.
        arc: u32,
        /// Number of graph arcs in the snapshot (exclusive bound).
        n_graph_arcs: usize,
    },
    /// An incremental update delta expands to an arc whose child sits at
    /// timing level 0. The batched dirty-mask sweep seeds dirt on arc
    /// children and starts its levelized propagation at level 1, so a
    /// level-0 child would be silently skipped — it can only arise from a
    /// malformed snapshot (a level-0 node with fanin), so it is rejected
    /// as fatal before any annotation is written.
    DeltaChildAtLevelZero {
        /// Position of the delta in the caller's batch.
        index: usize,
        /// The graph-arc id the delta targets.
        arc: u32,
        /// The offending expanded-arc child (original node id).
        child: u32,
    },
    /// An arc's parent is not in a strictly earlier level than its child
    /// (mis-levelization or a combinational cycle squeezed into the CSR).
    ArcLevelInversion {
        /// Expanded arc index.
        arc: usize,
        /// Parent node (original id).
        parent: u32,
        /// Child node (original id).
        child: u32,
    },
    /// Two identical expanded arcs into the same node.
    DuplicateArc {
        /// Expanded arc index of the duplicate.
        arc: usize,
        /// Child node (original id).
        node: u32,
    },
    /// An arc's `source_arc` (graph-arc id) exceeds
    /// [`source_arc_cap`]. The engine sizes its gradient-aggregation CSR
    /// by `max(source_arc) + 1`, so an absurd id turns into an unbounded
    /// allocation; legitimate ids are always below the expanded arc count
    /// (expansion only ever grows the array), and the cap's headroom
    /// keeps the bound valid across [`repair`]'s arc drops.
    ArcSourceOutOfRange {
        /// Expanded arc index.
        arc: usize,
        /// The out-of-range graph-arc id.
        source_arc: u32,
    },
    /// An arc mean is NaN or infinite.
    NonFiniteMean {
        /// Expanded arc index.
        arc: usize,
        /// Transition (0 = rise, 1 = fall).
        rf: u8,
        /// The offending value.
        value: f64,
    },
    /// An arc sigma is NaN, infinite, or negative.
    InvalidSigma {
        /// Expanded arc index.
        arc: usize,
        /// Transition (0 = rise, 1 = fall).
        rf: u8,
        /// The offending value.
        value: f64,
    },
    /// A startpoint references a node outside the range.
    SourceNodeOutOfRange {
        /// Source table index.
        index: usize,
        /// The out-of-range node.
        node: u32,
    },
    /// A startpoint's id does not equal its table index (the engine uses
    /// sp ids to index per-sp arrays).
    SourceIdMismatch {
        /// Source table index.
        index: usize,
        /// The stored id.
        sp: u32,
    },
    /// A launch arrival statistic is NaN/infinite (mean) or invalid
    /// (sigma).
    SourceStatInvalid {
        /// Source table index.
        index: usize,
        /// Transition (0 = rise, 1 = fall).
        rf: u8,
        /// The offending value.
        value: f64,
    },
    /// An endpoint references a node outside the range.
    EndpointNodeOutOfRange {
        /// Endpoint table index.
        index: usize,
        /// The out-of-range node.
        node: u32,
    },
    /// An endpoint's id does not equal its table index.
    EndpointIdMismatch {
        /// Endpoint table index.
        index: usize,
        /// The stored id.
        ep: u32,
    },
    /// An endpoint required time is NaN (±∞ is representable: an
    /// unconstrained endpoint).
    EndpointRequiredNan {
        /// Endpoint table index.
        index: usize,
    },
    /// A clock leaf reference is outside the clock tree.
    LeafOutOfRange {
        /// Which table holds the reference (`"sp_leaf"` / `"endpoint"`).
        table: &'static str,
        /// Index within that table.
        index: usize,
        /// The out-of-range leaf.
        leaf: u32,
    },
    /// `sp_leaf` does not have one entry per startpoint.
    SpLeafLenMismatch {
        /// `sp_leaf` length.
        sp_leaf: usize,
        /// Startpoint count.
        sources: usize,
    },
    /// The clock-tree arrays are inconsistent (length mismatch, multiple
    /// roots, non-decreasing depth along parents, or non-finite credit) —
    /// CPPR walks over them could loop or index out of range.
    ClockTreeBroken {
        /// What is wrong.
        detail: String,
    },
    /// The clock period is NaN or non-positive (+∞ means "no clock" and
    /// is valid).
    PeriodInvalid {
        /// The offending value.
        value: f64,
    },
    /// `n_sigma` is NaN, infinite, or negative.
    NSigmaInvalid {
        /// The offending value.
        value: f64,
    },
    /// No path can reach this endpoint (no fanin and not a startpoint).
    UnreachableEndpoint {
        /// Endpoint table index.
        index: usize,
        /// The endpoint node (original id).
        node: u32,
    },
}

impl Issue {
    /// The severity class of this issue.
    pub fn severity(&self) -> Severity {
        match self {
            Issue::BadConfig { .. }
            | Issue::NodeCountMismatch { .. }
            | Issue::OrderNotPermutation { .. }
            | Issue::LevelCsrBroken { .. }
            | Issue::FaninCsrBroken { .. }
            | Issue::DeltaArcOutOfRange { .. }
            | Issue::DeltaChildAtLevelZero { .. } => Severity::Fatal,
            Issue::UnreachableEndpoint { .. } => Severity::Warning,
            _ => Severity::Repairable,
        }
    }
}

impl std::fmt::Display for Issue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Issue::BadConfig { message } => write!(f, "bad config: {message}"),
            Issue::NodeCountMismatch { n_nodes, order_len } => {
                write!(f, "n_nodes = {n_nodes} but order has {order_len} entries")
            }
            Issue::OrderNotPermutation { entry } => {
                write!(f, "order is not a permutation (entry {entry})")
            }
            Issue::LevelCsrBroken { detail } => write!(f, "level CSR broken: {detail}"),
            Issue::FaninCsrBroken { detail } => write!(f, "fanin CSR broken: {detail}"),
            Issue::ArcParentOutOfRange { arc, parent } => {
                write!(f, "arc {arc}: parent {parent} out of range")
            }
            Issue::DeltaArcOutOfRange {
                index,
                arc,
                n_graph_arcs,
            } => write!(
                f,
                "delta {index}: arc {arc} out of range (snapshot has {n_graph_arcs} graph arcs)"
            ),
            Issue::DeltaChildAtLevelZero { index, arc, child } => write!(
                f,
                "delta {index}: arc {arc} expands to child {child} at timing level 0 \
                 (outside the batched dirty sweep)"
            ),
            Issue::ArcLevelInversion { arc, parent, child } => write!(
                f,
                "arc {arc}: parent {parent} not in a strictly earlier level than child {child}"
            ),
            Issue::ArcSourceOutOfRange { arc, source_arc } => {
                write!(f, "arc {arc}: graph-arc id {source_arc} out of range")
            }
            Issue::DuplicateArc { arc, node } => {
                write!(f, "arc {arc}: duplicate fanin arc into node {node}")
            }
            Issue::NonFiniteMean { arc, rf, value } => {
                write!(f, "arc {arc} rf {rf}: non-finite mean {value}")
            }
            Issue::InvalidSigma { arc, rf, value } => {
                write!(f, "arc {arc} rf {rf}: invalid sigma {value}")
            }
            Issue::SourceNodeOutOfRange { index, node } => {
                write!(f, "source {index}: node {node} out of range")
            }
            Issue::SourceIdMismatch { index, sp } => {
                write!(f, "source {index}: sp id {sp} != table index")
            }
            Issue::SourceStatInvalid { index, rf, value } => {
                write!(f, "source {index} rf {rf}: invalid launch stat {value}")
            }
            Issue::EndpointNodeOutOfRange { index, node } => {
                write!(f, "endpoint {index}: node {node} out of range")
            }
            Issue::EndpointIdMismatch { index, ep } => {
                write!(f, "endpoint {index}: ep id {ep} != table index")
            }
            Issue::EndpointRequiredNan { index } => {
                write!(f, "endpoint {index}: required time is NaN")
            }
            Issue::LeafOutOfRange { table, index, leaf } => {
                write!(f, "{table}[{index}]: clock leaf {leaf} out of range")
            }
            Issue::SpLeafLenMismatch { sp_leaf, sources } => {
                write!(f, "sp_leaf has {sp_leaf} entries for {sources} startpoints")
            }
            Issue::ClockTreeBroken { detail } => write!(f, "clock tree broken: {detail}"),
            Issue::PeriodInvalid { value } => write!(f, "invalid clock period {value}"),
            Issue::NSigmaInvalid { value } => write!(f, "invalid n_sigma {value}"),
            Issue::UnreachableEndpoint { index, node } => {
                write!(f, "endpoint {index} (node {node}) is unreachable")
            }
        }
    }
}

/// Cap on individually recorded issues; beyond it only counters grow.
pub const MAX_RECORDED_ISSUES: usize = 64;

/// Everything a validation (or repair) pass found.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ValidationReport {
    /// The first [`MAX_RECORDED_ISSUES`] issues in discovery order.
    pub issues: Vec<Issue>,
    /// Total fatal issues (may exceed the recorded list).
    pub n_fatal: usize,
    /// Total repairable issues.
    pub n_repairable: usize,
    /// Total warnings.
    pub n_warning: usize,
    /// How many repairable issues a [`repair`] pass actually fixed
    /// (0 for a pure [`validate`] pass).
    pub n_repaired: usize,
}

impl ValidationReport {
    /// Records an issue, updating the severity counters and the capped
    /// detail list.
    pub fn record(&mut self, issue: Issue) {
        match issue.severity() {
            Severity::Fatal => self.n_fatal += 1,
            Severity::Repairable => self.n_repairable += 1,
            Severity::Warning => self.n_warning += 1,
        }
        if self.issues.len() < MAX_RECORDED_ISSUES {
            self.issues.push(issue);
        }
    }

    /// Whether a Strict pass rejects this snapshot.
    pub fn rejects_strict(&self) -> bool {
        self.n_fatal > 0 || self.n_repairable > 0
    }

    /// Whether even a Repair pass must reject this snapshot.
    pub fn rejects_repair(&self) -> bool {
        self.n_fatal > 0
    }

    /// Whether the snapshot is fully clean (warnings allowed).
    pub fn is_clean(&self) -> bool {
        !self.rejects_strict()
    }

    /// Total issues of every severity.
    pub fn total(&self) -> usize {
        self.n_fatal + self.n_repairable + self.n_warning
    }
}

impl std::fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} fatal, {} repairable ({} repaired), {} warnings",
            self.n_fatal, self.n_repairable, self.n_repaired, self.n_warning
        )?;
        for issue in self.issues.iter().take(8) {
            write!(f, "; {issue}")?;
        }
        if self.total() > self.issues.len().min(8) {
            write!(f, "; …")?;
        }
        Ok(())
    }
}

/// Structure lookups shared by validation and repair: renumbered position
/// and timing level per original node id. `None` when the structural
/// arrays are too broken to derive them.
struct Positions {
    /// Original node id → renumbered (level-major) position.
    pos_of: Vec<u32>,
    /// Renumbered position → timing level.
    level_of_pos: Vec<u32>,
}

/// Checks the structural skeleton (counts, permutation, CSRs) and derives
/// position lookups. Fatal issues land in `report`.
fn check_structure(init: &InstaInit, report: &mut ValidationReport) -> Option<Positions> {
    let n = init.n_nodes;
    if init.order.len() != n {
        report.record(Issue::NodeCountMismatch {
            n_nodes: n,
            order_len: init.order.len(),
        });
        return None;
    }

    // `order` must be a permutation of 0..n.
    let mut pos_of = vec![u32::MAX; n];
    let mut ok = true;
    for (pos, &orig) in init.order.iter().enumerate() {
        if (orig as usize) >= n || pos_of[orig as usize] != u32::MAX {
            report.record(Issue::OrderNotPermutation { entry: orig });
            ok = false;
            break;
        }
        pos_of[orig as usize] = pos as u32;
    }

    // Level CSR: starts at 0, monotone, covers all nodes.
    if init.level_start.is_empty() {
        report.record(Issue::LevelCsrBroken {
            detail: "empty level_start".into(),
        });
        ok = false;
    } else if init.level_start[0] != 0 {
        report.record(Issue::LevelCsrBroken {
            detail: format!("level_start[0] = {} != 0", init.level_start[0]),
        });
        ok = false;
    } else if init.level_start.windows(2).any(|w| w[1] < w[0]) {
        report.record(Issue::LevelCsrBroken {
            detail: "level_start not monotone".into(),
        });
        ok = false;
    } else if *init.level_start.last().expect("non-empty") as usize != n {
        report.record(Issue::LevelCsrBroken {
            detail: format!(
                "level_start covers {} of {n} nodes",
                init.level_start.last().expect("non-empty")
            ),
        });
        ok = false;
    }

    // Fanin CSR: one row per node, monotone, covering the arc array.
    if init.fanin_start.len() != n + 1 {
        report.record(Issue::FaninCsrBroken {
            detail: format!("fanin_start has {} rows for {n} nodes", init.fanin_start.len()),
        });
        ok = false;
    } else if init.fanin_start[0] != 0 || init.fanin_start.windows(2).any(|w| w[1] < w[0]) {
        report.record(Issue::FaninCsrBroken {
            detail: "fanin_start not monotone from 0".into(),
        });
        ok = false;
    } else if *init.fanin_start.last().expect("non-empty") as usize != init.fanin.len() {
        report.record(Issue::FaninCsrBroken {
            detail: format!(
                "fanin_start covers {} of {} arcs",
                init.fanin_start.last().expect("non-empty"),
                init.fanin.len()
            ),
        });
        ok = false;
    }

    if !ok {
        return None;
    }

    // Position → level via the (validated) level CSR.
    let mut level_of_pos = vec![0u32; n];
    for l in 0..init.level_start.len() - 1 {
        for pos in init.level_start[l] as usize..init.level_start[l + 1] as usize {
            level_of_pos[pos] = l as u32;
        }
    }
    Some(Positions { pos_of, level_of_pos })
}

/// Upper bound (exclusive) on graph-arc ids accepted for a snapshot with
/// `n_arcs` expanded arcs. Legitimate ids are `< n_arcs`; the 16× + 1024
/// headroom keeps engine allocations within a small multiple of the input
/// size while leaving the bound valid for snapshots [`repair`] has
/// shrunk by dropping arcs.
pub fn source_arc_cap(n_arcs: usize) -> usize {
    n_arcs.saturating_mul(16).saturating_add(1024)
}

/// Validates a snapshot in one O(nodes + arcs + endpoints + tree) pass.
pub fn validate(init: &InstaInit) -> ValidationReport {
    let mut report = ValidationReport::default();
    let Some(pos) = check_structure(init, &mut report) else {
        return report;
    };
    let n = init.n_nodes;

    // ---- Arcs: parent bounds, level monotonicity, duplicates, stats ----
    for v in 0..n {
        let range = init.fanin_start[v] as usize..init.fanin_start[v + 1] as usize;
        let child_level = pos.level_of_pos[pos.pos_of[v] as usize];
        let arcs = &init.fanin[range.clone()];
        for (off, arc) in arcs.iter().enumerate() {
            let ai = range.start + off;
            if (arc.parent as usize) >= n {
                report.record(Issue::ArcParentOutOfRange {
                    arc: ai,
                    parent: arc.parent,
                });
            } else if pos.level_of_pos[pos.pos_of[arc.parent as usize] as usize] >= child_level {
                report.record(Issue::ArcLevelInversion {
                    arc: ai,
                    parent: arc.parent,
                    child: v as u32,
                });
            }
            if arc.source_arc as usize >= source_arc_cap(init.fanin.len()) {
                report.record(Issue::ArcSourceOutOfRange {
                    arc: ai,
                    source_arc: arc.source_arc,
                });
            }
            // Exact duplicate: same parent, unateness, and source arc.
            // Fanin degrees are single-digit in practice, so the local
            // quadratic scan stays O(arcs) overall.
            if arcs[..off].iter().any(|prev| {
                prev.parent == arc.parent
                    && prev.negative_unate == arc.negative_unate
                    && prev.source_arc == arc.source_arc
            }) {
                report.record(Issue::DuplicateArc {
                    arc: ai,
                    node: v as u32,
                });
            }
            for rf in 0..2 {
                if !arc.mean[rf].is_finite() {
                    report.record(Issue::NonFiniteMean {
                        arc: ai,
                        rf: rf as u8,
                        value: arc.mean[rf],
                    });
                }
                if !arc.sigma[rf].is_finite() || arc.sigma[rf] < 0.0 {
                    report.record(Issue::InvalidSigma {
                        arc: ai,
                        rf: rf as u8,
                        value: arc.sigma[rf],
                    });
                }
            }
        }
    }

    // ---- Clock tree ----------------------------------------------------
    let n_tree = init.clock_parent.len();
    let tree_ok = check_clock_tree(init, &mut report);

    // ---- Sources -------------------------------------------------------
    for (i, s) in init.sources.iter().enumerate() {
        if (s.node as usize) >= n {
            report.record(Issue::SourceNodeOutOfRange {
                index: i,
                node: s.node,
            });
        }
        if s.sp as usize != i {
            report.record(Issue::SourceIdMismatch { index: i, sp: s.sp });
        }
        for rf in 0..2 {
            if !s.mean[rf].is_finite() {
                report.record(Issue::SourceStatInvalid {
                    index: i,
                    rf: rf as u8,
                    value: s.mean[rf],
                });
            }
            if !s.sigma[rf].is_finite() || s.sigma[rf] < 0.0 {
                report.record(Issue::SourceStatInvalid {
                    index: i,
                    rf: rf as u8,
                    value: s.sigma[rf],
                });
            }
        }
    }
    if init.sp_leaf.len() != init.sources.len() {
        report.record(Issue::SpLeafLenMismatch {
            sp_leaf: init.sp_leaf.len(),
            sources: init.sources.len(),
        });
    }
    for (i, &leaf) in init.sp_leaf.iter().enumerate() {
        if leaf != NO_LEAF && (!tree_ok || leaf as usize >= n_tree) {
            report.record(Issue::LeafOutOfRange {
                table: "sp_leaf",
                index: i,
                leaf,
            });
        }
    }

    // ---- Endpoints -----------------------------------------------------
    let mut is_source = vec![false; n];
    for s in &init.sources {
        if (s.node as usize) < n {
            is_source[s.node as usize] = true;
        }
    }
    for (i, ep) in init.endpoints.iter().enumerate() {
        if (ep.node as usize) >= n {
            report.record(Issue::EndpointNodeOutOfRange {
                index: i,
                node: ep.node,
            });
            continue;
        }
        if ep.ep as usize != i {
            report.record(Issue::EndpointIdMismatch { index: i, ep: ep.ep });
        }
        if ep.required_base.is_nan() {
            report.record(Issue::EndpointRequiredNan { index: i });
        }
        if ep.leaf != NO_LEAF && (!tree_ok || ep.leaf as usize >= n_tree) {
            report.record(Issue::LeafOutOfRange {
                table: "endpoint",
                index: i,
                leaf: ep.leaf,
            });
        }
        let v = ep.node as usize;
        let no_fanin = init.fanin_start[v] == init.fanin_start[v + 1];
        if no_fanin && !is_source[v] {
            report.record(Issue::UnreachableEndpoint {
                index: i,
                node: ep.node,
            });
        }
    }

    // ---- Scalars -------------------------------------------------------
    if init.period_ps.is_nan() || init.period_ps <= 0.0 {
        report.record(Issue::PeriodInvalid {
            value: init.period_ps,
        });
    }
    if !init.n_sigma.is_finite() || init.n_sigma < 0.0 {
        report.record(Issue::NSigmaInvalid {
            value: init.n_sigma,
        });
    }

    report
}

/// Checks the clock-tree arrays; returns whether LCA walks over them are
/// safe (in-bounds and terminating).
fn check_clock_tree(init: &InstaInit, report: &mut ValidationReport) -> bool {
    let n_tree = init.clock_parent.len();
    if init.clock_depth.len() != n_tree || init.clock_credit.len() != n_tree {
        report.record(Issue::ClockTreeBroken {
            detail: format!(
                "array lengths differ: parent {n_tree}, depth {}, credit {}",
                init.clock_depth.len(),
                init.clock_credit.len()
            ),
        });
        return false;
    }
    let mut roots = 0usize;
    for i in 0..n_tree {
        let p = init.clock_parent[i];
        if p == NO_LEAF {
            roots += 1;
            continue;
        }
        if p as usize >= n_tree {
            report.record(Issue::ClockTreeBroken {
                detail: format!("node {i}: parent {p} out of range"),
            });
            return false;
        }
        // Depth must strictly decrease toward the root: LCA walks
        // terminate and cycles are impossible.
        if init.clock_depth[p as usize] >= init.clock_depth[i] {
            report.record(Issue::ClockTreeBroken {
                detail: format!(
                    "node {i}: parent depth {} >= own depth {}",
                    init.clock_depth[p as usize], init.clock_depth[i]
                ),
            });
            return false;
        }
    }
    if n_tree > 0 && roots != 1 {
        report.record(Issue::ClockTreeBroken {
            detail: format!("{roots} roots (LCA walks between subtrees never meet)"),
        });
        return false;
    }
    if let Some(i) = init.clock_credit.iter().position(|c| !c.is_finite()) {
        report.record(Issue::ClockTreeBroken {
            detail: format!("node {i}: non-finite credit {}", init.clock_credit[i]),
        });
        return false;
    }
    true
}

/// Validates and fixes every repairable issue in place, returning the
/// pre-repair report with [`ValidationReport::n_repaired`] set.
///
/// # Errors
///
/// Returns [`InstaError::Validate`] when the snapshot has fatal
/// (structurally irreparable) issues; the snapshot is left untouched.
pub fn repair(init: &mut InstaInit) -> Result<ValidationReport, InstaError> {
    let mut report = validate(init);
    if report.rejects_repair() {
        return Err(InstaError::Validate(report));
    }
    if !report.rejects_strict() {
        return Ok(report); // nothing to fix
    }
    let n = init.n_nodes;
    // Structure is sound (no fatal issues), so the lookups exist.
    let mut scratch = ValidationReport::default();
    let pos = check_structure(init, &mut scratch).expect("structure verified");

    // ---- Clock tree: disable entirely when inconsistent ----------------
    let mut tree_ok = check_clock_tree(init, &mut scratch);
    if !tree_ok {
        init.clock_parent.clear();
        init.clock_depth.clear();
        init.clock_credit.clear();
        tree_ok = true; // now trivially consistent (empty)
    }
    let n_tree = init.clock_parent.len();
    let _ = tree_ok;

    // ---- Arcs: clamp stats, drop the irreparable, rebuild the CSR ------
    let mut fanin = Vec::with_capacity(init.fanin.len());
    let mut fanin_start = Vec::with_capacity(n + 1);
    // Cap from the pre-repair arc count: dropping arcs shrinks the array,
    // and the cap's headroom is what keeps kept arcs valid against the
    // post-repair bound.
    let src_cap = source_arc_cap(init.fanin.len());
    fanin_start.push(0u32);
    for v in 0..n {
        let range = init.fanin_start[v] as usize..init.fanin_start[v + 1] as usize;
        let child_level = pos.level_of_pos[pos.pos_of[v] as usize];
        let kept_base = fanin.len();
        for ai in range {
            let mut arc = init.fanin[ai];
            if (arc.parent as usize) >= n
                || pos.level_of_pos[pos.pos_of[arc.parent as usize] as usize] >= child_level
                || arc.source_arc as usize >= src_cap
            {
                // Drop: out-of-range parent, level inversion, or an
                // absurd graph-arc id (allocation bomb).
                continue;
            }
            if fanin[kept_base..].iter().any(|prev: &insta_refsta::export::ExportedArc| {
                prev.parent == arc.parent
                    && prev.negative_unate == arc.negative_unate
                    && prev.source_arc == arc.source_arc
            }) {
                continue; // drop duplicate
            }
            for rf in 0..2 {
                if !arc.mean[rf].is_finite() {
                    arc.mean[rf] = 0.0;
                }
                if !arc.sigma[rf].is_finite() || arc.sigma[rf] < 0.0 {
                    arc.sigma[rf] = 0.0;
                }
            }
            fanin.push(arc);
        }
        fanin_start.push(fanin.len() as u32);
    }
    init.fanin = fanin;
    init.fanin_start = fanin_start;

    // ---- Sources: drop out-of-range, renumber, clamp stats -------------
    let old_sp_leaf = std::mem::take(&mut init.sp_leaf);
    let mut sources = Vec::with_capacity(init.sources.len());
    for (i, s) in init.sources.iter().enumerate() {
        if (s.node as usize) >= n {
            continue;
        }
        let mut s = *s;
        s.sp = sources.len() as u32;
        for rf in 0..2 {
            if !s.mean[rf].is_finite() {
                s.mean[rf] = 0.0;
            }
            if !s.sigma[rf].is_finite() || s.sigma[rf] < 0.0 {
                s.sigma[rf] = 0.0;
            }
        }
        let leaf = old_sp_leaf.get(i).copied().unwrap_or(NO_LEAF);
        init.sp_leaf.push(if leaf != NO_LEAF && (leaf as usize) < n_tree {
            leaf
        } else {
            NO_LEAF
        });
        sources.push(s);
    }
    init.sources = sources;

    // ---- Endpoints: drop out-of-range, renumber, clamp -----------------
    let mut endpoints = Vec::with_capacity(init.endpoints.len());
    for ep in init.endpoints.iter() {
        if (ep.node as usize) >= n {
            continue;
        }
        let mut ep = *ep;
        ep.ep = endpoints.len() as u32;
        if ep.required_base.is_nan() {
            ep.required_base = f64::INFINITY; // unconstrained
        }
        if ep.leaf != NO_LEAF && (ep.leaf as usize) >= n_tree {
            ep.leaf = NO_LEAF;
        }
        endpoints.push(ep);
    }
    init.endpoints = endpoints;

    // ---- Scalars -------------------------------------------------------
    if init.period_ps.is_nan() || init.period_ps <= 0.0 {
        init.period_ps = f64::INFINITY;
    }
    if !init.n_sigma.is_finite() || init.n_sigma < 0.0 {
        init.n_sigma = 0.0;
    }

    // Everything repairable is fixed by construction.
    report.n_repaired = report.n_repairable;
    debug_assert!(validate(init).is_clean(), "repair must converge");
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use insta_netlist::generator::{generate_design, GeneratorConfig};
    use insta_refsta::{RefSta, StaConfig};

    fn clean_init() -> InstaInit {
        let d = generate_design(&GeneratorConfig::small("val", 41));
        let mut sta = RefSta::new(&d, StaConfig::default()).expect("build");
        sta.full_update(&d);
        sta.export_insta_init()
    }

    #[test]
    fn clean_export_validates_clean() {
        let report = validate(&clean_init());
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.n_fatal, 0);
        assert_eq!(report.n_repairable, 0);
    }

    #[test]
    fn broken_structure_is_fatal_and_irreparable() {
        let mut init = clean_init();
        init.order.swap_remove(0);
        init.order.push(init.order[0]); // duplicate: not a permutation
        let report = validate(&init);
        assert!(report.rejects_repair(), "{report}");
        assert!(repair(&mut init).is_err());
    }

    #[test]
    fn poisoned_stats_are_repairable() {
        let mut init = clean_init();
        init.fanin[0].mean[0] = f64::NAN;
        init.fanin[1].sigma[1] = -2.0;
        init.fanin[2].mean[1] = f64::INFINITY;
        let before = validate(&init);
        assert!(before.rejects_strict());
        assert!(!before.rejects_repair());
        let report = repair(&mut init).expect("repairable");
        assert_eq!(report.n_repaired, report.n_repairable);
        assert!(validate(&init).is_clean());
        assert_eq!(init.fanin[0].mean[0], 0.0);
        assert_eq!(init.fanin[1].sigma[1], 0.0);
    }

    #[test]
    fn level_inversion_is_detected_and_dropped() {
        let mut init = clean_init();
        // Point some late-level node's arc parent at the last node in the
        // order (deepest level) to create an inversion.
        let deep = *init.order.last().expect("nodes");
        let victim = (0..init.n_nodes)
            .find(|&v| {
                init.fanin_start[v] < init.fanin_start[v + 1] && v as u32 != deep
            })
            .expect("node with fanin");
        let ai = init.fanin_start[victim] as usize;
        init.fanin[ai].parent = deep;
        let report = validate(&init);
        assert!(
            report.issues.iter().any(|i| matches!(
                i,
                Issue::ArcLevelInversion { .. } | Issue::DuplicateArc { .. }
            )),
            "{report}"
        );
        let n_arcs = init.fanin.len();
        repair(&mut init).expect("repairable");
        assert!(init.fanin.len() < n_arcs, "inverted arc must be dropped");
        assert!(validate(&init).is_clean());
    }

    #[test]
    fn out_of_range_references_are_detected() {
        let mut init = clean_init();
        init.endpoints[0].node = u32::MAX;
        init.sources[0].node = u32::MAX;
        init.sp_leaf[1] = 1_000_000;
        let report = validate(&init);
        assert!(report.issues.iter().any(|i| matches!(i, Issue::EndpointNodeOutOfRange { .. })));
        assert!(report.issues.iter().any(|i| matches!(i, Issue::SourceNodeOutOfRange { .. })));
        assert!(report.issues.iter().any(|i| matches!(i, Issue::LeafOutOfRange { .. })));
        let n_src = init.sources.len();
        let n_ep = init.endpoints.len();
        repair(&mut init).expect("repairable");
        assert_eq!(init.sources.len(), n_src - 1);
        assert_eq!(init.endpoints.len(), n_ep - 1);
        assert!(validate(&init).is_clean());
    }

    #[test]
    fn absurd_graph_arc_id_is_rejected_and_repaired_by_dropping() {
        let mut init = clean_init();
        // Well below u32::MAX but far beyond any sane id for this arc
        // count: would make the engine allocate a multi-gigabyte
        // gradient-aggregation CSR if accepted.
        init.fanin[0].source_arc = 4_000_000_017;
        let report = validate(&init);
        assert!(
            report.issues.iter().any(|i| matches!(i, Issue::ArcSourceOutOfRange { .. })),
            "{report}"
        );
        assert!(report.rejects_strict());
        let n_arcs = init.fanin.len();
        repair(&mut init).expect("repairable");
        assert_eq!(init.fanin.len(), n_arcs - 1, "offending arc dropped");
        assert!(validate(&init).is_clean());
    }

    #[test]
    fn broken_clock_tree_disables_cppr() {
        let mut init = clean_init();
        assert!(!init.clock_parent.is_empty());
        // Introduce a parent cycle (depth no longer decreases).
        let last = init.clock_parent.len() - 1;
        init.clock_parent[0] = last as u32;
        let report = validate(&init);
        assert!(report.issues.iter().any(|i| matches!(i, Issue::ClockTreeBroken { .. })), "{report}");
        repair(&mut init).expect("repairable");
        assert!(init.clock_parent.is_empty());
        assert!(init.sp_leaf.iter().all(|&l| l == NO_LEAF));
        assert!(validate(&init).is_clean());
    }

    #[test]
    fn scalar_poison_is_repairable() {
        let mut init = clean_init();
        init.period_ps = f64::NAN;
        init.n_sigma = f64::NEG_INFINITY;
        assert!(validate(&init).rejects_strict());
        repair(&mut init).expect("repairable");
        assert_eq!(init.period_ps, f64::INFINITY);
        assert_eq!(init.n_sigma, 0.0);
    }

    #[test]
    fn issue_cap_bounds_the_report() {
        let mut init = clean_init();
        for arc in init.fanin.iter_mut() {
            arc.mean[0] = f64::NAN;
        }
        let report = validate(&init);
        assert!(report.issues.len() <= MAX_RECORDED_ISSUES);
        assert!(report.n_repairable >= init.fanin.len());
    }
}
