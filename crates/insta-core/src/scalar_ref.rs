//! Frozen scalar reference kernels — the pre-overhaul forward path.
//!
//! The forward kernel was rewritten for speed (gather-then-merge SoA
//! arenas, fixed-K compare-exchange restore networks, within-level CSR
//! reordering, and the fused evaluation + LSE sweep) under a strict
//! bit-identity contract: every consumer must observe exactly the floats
//! the original branching kernel produced. This module retains that
//! original kernel **verbatim** — the literal Algorithm 1 / Algorithm 2
//! transcriptions that shipped before the overhaul, serial, one candidate
//! at a time — as the ground truth the differential kernel-equivalence
//! suite (`tests/kernel_equivalence.rs`) pins the production kernels
//! against.
//!
//! Nothing here is a second implementation to maintain: these functions
//! are frozen. If a production-kernel change breaks equivalence, the
//! production kernel is wrong (or the change is a semantic one that must
//! update this reference *and* say so in review).
//!
//! Compiled only under `cfg(test)` or the `scalar-reference` feature, so
//! release builds of the engine carry none of it.

use crate::engine::{InstaEngine, State, Static};
use crate::hold::HoldAttributes;
use crate::metrics::InstaReport;
use crate::topk::{Candidate, NO_SP};

/// The pre-overhaul Algorithm 2 queue update, frozen byte-for-byte.
///
/// Maintains one K-entry queue stored as parallel slices in descending
/// `arrival` order with unique startpoints:
///
/// 1. if `sp` already exists, replace its entry when the new arrival is
///    strictly larger (then bubble it toward the front);
/// 2. otherwise insert at the sorted position, shifting smaller entries
///    down and dropping the last one.
///
/// The production kernel added a floor fast-path rejection before the
/// uniqueness scan; this copy predates it, so equal-key tie-breaking and
/// duplicate-startpoint handling are exercised exactly as originally
/// written.
#[inline]
pub fn ref_update_topk(
    arrivals: &mut [f64],
    means: &mut [f64],
    sigmas: &mut [f64],
    sps: &mut [u32],
    cand: Candidate,
) {
    let k = arrivals.len();
    debug_assert!(k > 0 && means.len() == k && sigmas.len() == k && sps.len() == k);

    // Step 1: startpoint uniqueness. Occupied slots are dense from the
    // front, so the scan stops at the first empty slot.
    for j in 0..k {
        if sps[j] == NO_SP {
            // Empty tail: the startpoint is new; insert right here.
            arrivals[j] = cand.arrival;
            means[j] = cand.mean;
            sigmas[j] = cand.sigma;
            sps[j] = cand.sp;
            let mut i = j;
            while i > 0 && arrivals[i - 1] < arrivals[i] {
                arrivals.swap(i - 1, i);
                means.swap(i - 1, i);
                sigmas.swap(i - 1, i);
                sps.swap(i - 1, i);
                i -= 1;
            }
            return;
        }
        if sps[j] == cand.sp {
            if cand.arrival > arrivals[j] {
                arrivals[j] = cand.arrival;
                means[j] = cand.mean;
                sigmas[j] = cand.sigma;
                // Bubble up: the increased entry may outrank predecessors.
                let mut i = j;
                while i > 0 && arrivals[i - 1] < arrivals[i] {
                    arrivals.swap(i - 1, i);
                    means.swap(i - 1, i);
                    sigmas.swap(i - 1, i);
                    sps.swap(i - 1, i);
                    i -= 1;
                }
            }
            return;
        }
    }

    // Step 2: insert if it beats the smallest entry (or an empty slot).
    if cand.arrival <= arrivals[k - 1] {
        return;
    }
    // Find the insertion position (first entry smaller than the candidate).
    let mut pos = k - 1;
    while pos > 0 && arrivals[pos - 1] < cand.arrival {
        pos -= 1;
    }
    // Shift down and insert.
    for i in (pos..k - 1).rev() {
        arrivals[i + 1] = arrivals[i];
        means[i + 1] = means[i];
        sigmas[i + 1] = sigmas[i];
        sps[i + 1] = sps[i];
    }
    arrivals[pos] = cand.arrival;
    means[pos] = cand.mean;
    sigmas[pos] = cand.sigma;
    sps[pos] = cand.sp;
}

/// The pre-overhaul `merge_node_queue`, frozen: single-fanin vectorized
/// transform with nearly-sorted insertion restore, multi-fanin j-major /
/// arc-minor interleaved merge pushing one [`Candidate`] at a time
/// through [`ref_update_topk`].
#[allow(clippy::too_many_arguments)]
fn ref_merge_node_queue(
    st: &Static,
    fanin: std::ops::Range<usize>,
    rf: usize,
    k: usize,
    mean_done: &[f64],
    sigma_done: &[f64],
    sp_done: &[u32],
    arc_ann: &impl Fn(usize) -> (f64, f64),
    qa: &mut [f64],
    qm: &mut [f64],
    qs: &mut [f64],
    qsp: &mut [u32],
) {
    if fanin.len() == 1 {
        let ai = fanin.start;
        let p = st.arc_parent[ai] as usize;
        let prf = if st.arc_neg[ai] { 1 - rf } else { rf };
        let (a_mean, s_arc) = arc_ann(ai);
        for j in 0..k {
            let pidx = (p * 2 + prf) * k + j;
            let sp = sp_done[pidx];
            if sp == NO_SP {
                break;
            }
            let mean = mean_done[pidx] + a_mean;
            let s_par = sigma_done[pidx];
            let sigma = (s_par * s_par + s_arc * s_arc).sqrt();
            qm[j] = mean;
            qs[j] = sigma;
            qa[j] = mean + st.n_sigma * sigma;
            qsp[j] = sp;
            // Insertion step of the nearly-sorted restore.
            let mut i = j;
            while i > 0 && qa[i - 1] < qa[i] {
                qa.swap(i - 1, i);
                qm.swap(i - 1, i);
                qs.swap(i - 1, i);
                qsp.swap(i - 1, i);
                i -= 1;
            }
        }
        return;
    }
    for j in 0..k {
        let mut any_live = false;
        for ai in fanin.clone() {
            let p = st.arc_parent[ai] as usize;
            let prf = if st.arc_neg[ai] { 1 - rf } else { rf };
            let pidx = (p * 2 + prf) * k + j;
            let sp = sp_done[pidx];
            if sp == NO_SP {
                continue;
            }
            any_live = true;
            let (a_mean, s_arc) = arc_ann(ai);
            let mean = mean_done[pidx] + a_mean;
            let s_par = sigma_done[pidx];
            let sigma = (s_par * s_par + s_arc * s_arc).sqrt();
            ref_update_topk(
                qa,
                qm,
                qs,
                qsp,
                Candidate {
                    arrival: mean + st.n_sigma * sigma,
                    mean,
                    sigma,
                    sp,
                },
            );
        }
        if !any_live {
            break;
        }
    }
}

/// One level of the frozen max-mode kernel (the pre-overhaul
/// `level_chunk`, serial over the whole level).
fn ref_level_max(st: &Static, state: &mut State, l: usize) {
    let k = state.k;
    let stride = 2 * k;
    let r = st.level_range(l);
    if r.is_empty() {
        return;
    }
    let split = r.start * stride;
    let (_, arr_cur) = state.topk_arrival.split_at_mut(split);
    let (mean_done, mean_cur) = state.topk_mean.split_at_mut(split);
    let (sigma_done, sigma_cur) = state.topk_sigma.split_at_mut(split);
    let (sp_done, sp_cur) = state.topk_sp.split_at_mut(split);
    for (li, v) in r.clone().enumerate() {
        let fanin = st.fanin_range(v);
        if fanin.is_empty() {
            continue; // level-0 stragglers with no driver stay empty
        }
        for rf in 0..2 {
            let off = li * stride + rf * k;
            let arc_ann = |ai: usize| (st.arc_mean[ai][rf], st.arc_sigma[ai][rf]);
            ref_merge_node_queue(
                st,
                fanin.clone(),
                rf,
                k,
                mean_done,
                sigma_done,
                sp_done,
                &arc_ann,
                &mut arr_cur[off..off + k],
                &mut mean_cur[off..off + k],
                &mut sigma_cur[off..off + k],
                &mut sp_cur[off..off + k],
            );
        }
    }
}

/// One level of the frozen min-mode kernel (the pre-overhaul
/// `min_level_chunk`: candidates pushed as negated early corners so the
/// max-queue keeps the smallest early arrivals).
fn ref_level_min(st: &Static, state: &mut State, l: usize) {
    let k = state.k;
    let stride = 2 * k;
    let r = st.level_range(l);
    if r.is_empty() {
        return;
    }
    let split = r.start * stride;
    let (_, arr_cur) = state.topk_arrival.split_at_mut(split);
    let (mean_done, mean_cur) = state.topk_mean.split_at_mut(split);
    let (sigma_done, sigma_cur) = state.topk_sigma.split_at_mut(split);
    let (sp_done, sp_cur) = state.topk_sp.split_at_mut(split);
    for (li, v) in r.clone().enumerate() {
        let fanin = st.fanin_range(v);
        if fanin.is_empty() {
            continue;
        }
        for rf in 0..2 {
            let off = li * stride + rf * k;
            let (qa, qm, qs, qsp) = (
                &mut arr_cur[off..off + k],
                &mut mean_cur[off..off + k],
                &mut sigma_cur[off..off + k],
                &mut sp_cur[off..off + k],
            );
            for j in 0..k {
                let mut any_live = false;
                for ai in fanin.clone() {
                    let p = st.arc_parent[ai] as usize;
                    let prf = if st.arc_neg[ai] { 1 - rf } else { rf };
                    let pidx = (p * 2 + prf) * k + j;
                    let sp = sp_done[pidx];
                    if sp == NO_SP {
                        continue;
                    }
                    any_live = true;
                    let mean = mean_done[pidx] + st.arc_mean[ai][rf];
                    let s_arc = st.arc_sigma[ai][rf];
                    let s_par = sigma_done[pidx];
                    let sigma = (s_par * s_par + s_arc * s_arc).sqrt();
                    ref_update_topk(
                        qa,
                        qm,
                        qs,
                        qsp,
                        Candidate {
                            // Negated early corner: the max-queue keeps
                            // the smallest early arrivals.
                            arrival: -(mean - st.n_sigma * sigma),
                            mean,
                            sigma,
                            sp,
                        },
                    );
                }
                if !any_live {
                    break;
                }
            }
        }
    }
}

/// The full frozen serial forward pass: global reset, launch seeding,
/// then [`ref_level_max`] level by level.
fn ref_forward(st: &Static, state: &mut State) {
    state.topk_arrival.fill(f64::NEG_INFINITY);
    state.topk_sp.fill(NO_SP);
    crate::forward::seed_sources(st, state, 0..st.n, &crate::stat::GaussianPocv);
    for l in 1..st.num_levels() {
        ref_level_max(st, state, l);
    }
}

/// The full frozen serial min-mode (hold) forward pass — the
/// pre-overhaul `forward_min`.
fn ref_forward_min(st: &Static, state: &mut State, attrs: &HoldAttributes) {
    let k = state.k;
    state.topk_arrival.fill(f64::NEG_INFINITY);
    state.topk_sp.fill(NO_SP);
    for (sp_idx, s) in st.sources.iter().enumerate() {
        let v = s.node as usize;
        for rf in 0..2 {
            let idx = (v * 2 + rf) * k;
            let mean = attrs.source_mean[sp_idx][rf];
            let sigma = attrs.source_sigma[sp_idx][rf];
            state.topk_mean[idx] = mean;
            state.topk_sigma[idx] = sigma;
            state.topk_arrival[idx] = -(mean - st.n_sigma * sigma);
            state.topk_sp[idx] = s.sp;
        }
    }
    for l in 1..st.num_levels() {
        ref_level_min(st, state, l);
    }
}

/// The frozen serial differentiable forward pass: the numerically stable
/// three-pass Log-Sum-Exp merge, one node at a time.
fn ref_forward_lse(st: &Static, state: &mut State, tau: f64) {
    crate::lse::lse_reset_seed(st, state, &crate::stat::GaussianPocv);
    for l in 1..st.num_levels() {
        for v in st.level_range(l) {
            let fanin = st.fanin_range(v);
            if fanin.is_empty() {
                continue;
            }
            for rf in 0..2usize {
                // Pass 1: candidate values and running max.
                let mut m = f64::NEG_INFINITY;
                for ai in fanin.clone() {
                    let p = st.arc_parent[ai] as usize;
                    let prf = if st.arc_neg[ai] { 1 - rf } else { rf };
                    let pa = state.lse_arrival[p * 2 + prf];
                    let c = if pa == f64::NEG_INFINITY {
                        f64::NEG_INFINITY
                    } else {
                        pa + st.arc_mean[ai][rf] + st.n_sigma * st.arc_sigma[ai][rf]
                    };
                    state.lse_weight[ai][rf] = c;
                    if c > m {
                        m = c;
                    }
                }
                if m == f64::NEG_INFINITY {
                    state.lse_arrival[v * 2 + rf] = f64::NEG_INFINITY;
                    for ai in fanin.clone() {
                        state.lse_weight[ai][rf] = 0.0;
                    }
                    continue;
                }
                // Pass 2: exponentiate and accumulate the denominator.
                let mut denom = 0.0;
                for ai in fanin.clone() {
                    let c = state.lse_weight[ai][rf];
                    let e = if c == f64::NEG_INFINITY {
                        0.0
                    } else {
                        ((c - m) / tau).exp()
                    };
                    state.lse_weight[ai][rf] = e;
                    denom += e;
                }
                // Pass 3: normalize into softmax weights (Eq. 6).
                for ai in fanin.clone() {
                    state.lse_weight[ai][rf] /= denom;
                }
                state.lse_arrival[v * 2 + rf] = m + tau * denom.ln();
            }
        }
    }
}

/// Reference-path entry points and raw-state snapshots for the
/// differential kernel-equivalence suite. Hidden from the public docs:
/// this is test infrastructure, not engine API, and it exists only under
/// `cfg(test)` / the `scalar-reference` feature.
#[doc(hidden)]
impl InstaEngine {
    /// Runs the frozen scalar forward pass over the current annotations
    /// and refreshes the endpoint report — the reference twin of
    /// [`propagate`](InstaEngine::propagate), with the same state
    /// bookkeeping.
    pub fn forward_scalar_reference(&mut self) -> &InstaReport {
        self.topk_writes += 1;
        self.topk_synced = false;
        ref_forward(&self.st, &mut self.state);
        let report =
            crate::metrics::evaluate(&self.st, &self.state, self.cfg.cppr, &crate::stat::GaussianPocv);
        self.state.report = Some(report);
        self.topk_synced = true;
        self.state.report.as_ref().expect("just set")
    }

    /// Runs the frozen scalar differentiable forward pass — the reference
    /// twin of [`forward_lse`](InstaEngine::forward_lse).
    pub fn forward_lse_scalar_reference(&mut self) {
        self.lse_writes += 1;
        self.state.lse_tau_used = None;
        ref_forward_lse(&self.st, &mut self.state, self.cfg.lse_tau);
        self.state.lse_tau_used = Some(self.cfg.lse_tau);
    }

    /// Runs the frozen scalar min-mode pass and evaluates hold checks —
    /// the reference twin of
    /// [`propagate_hold`](InstaEngine::propagate_hold).
    pub fn hold_scalar_reference(&mut self, attrs: &HoldAttributes) -> InstaReport {
        assert_eq!(attrs.source_mean.len(), self.st.sources.len());
        assert_eq!(attrs.required_base.len(), self.st.endpoints.len());
        self.topk_writes += 1;
        self.topk_synced = false;
        ref_forward_min(&self.st, &mut self.state, attrs);
        crate::hold::evaluate_hold(&self.st, &self.state, attrs, self.cfg.cppr, &crate::stat::GaussianPocv)
    }

    /// Raw Top-K state `(arrival, mean, sigma, sp)` for full-array
    /// bit-compares. Cloned: snapshots must survive further passes.
    pub fn topk_snapshot(&self) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<u32>) {
        (
            self.state.topk_arrival.clone(),
            self.state.topk_mean.clone(),
            self.state.topk_sigma.clone(),
            self.state.topk_sp.clone(),
        )
    }

    /// Raw LSE state `(smooth arrivals, softmax weights)`.
    pub fn lse_snapshot(&self) -> (Vec<f64>, Vec<[f64; 2]>) {
        (self.state.lse_arrival.clone(), self.state.lse_weight.clone())
    }

    /// Raw gradient state `(∂TNS/∂arrival, ∂TNS/∂arc-delay)`.
    pub fn grad_snapshot(&self) -> (Vec<f64>, Vec<[f64; 2]>) {
        (self.state.grad_arrival.clone(), self.state.grad_arc.clone())
    }
}
