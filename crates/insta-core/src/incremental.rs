//! Incremental evaluation: arc re-annotation plus full-speed
//! re-propagation (paper Application 1).
//!
//! INSTA's incremental story differs from a CPU timer's: instead of
//! maintaining a dirty cone, it re-annotates the cloned arc delays (from
//! `estimate_eco` deltas) and re-runs the *whole* forward pass — which is
//! the point of the paper: full-graph propagation is so fast that
//! "incremental" reduces to re-annotate + propagate.

use crate::engine::InstaEngine;
use crate::metrics::InstaReport;
use insta_refsta::eco::ArcDelta;

impl InstaEngine {
    /// Overwrites the cloned delay annotation of the given graph arcs (all
    /// of their non-unate expansions included).
    ///
    /// # Panics
    ///
    /// Panics if a delta references an arc index outside the snapshot.
    pub fn reannotate(&mut self, deltas: &[ArcDelta]) {
        for d in deltas {
            let g = d.arc as usize;
            assert!(g < self.st.n_graph_arcs, "arc {g} out of range");
            let range = self.st.expansion_start[g] as usize
                ..self.st.expansion_start[g + 1] as usize;
            for &e in &self.st.expansion_arc[range] {
                self.st.arc_mean[e as usize] = d.mean;
                self.st.arc_sigma[e as usize] = d.sigma;
            }
        }
    }

    /// Re-annotates and re-propagates in one call, returning the fresh
    /// report (the per-iteration evaluation of the commercial sizing
    /// flow).
    pub fn update_timing(&mut self, deltas: &[ArcDelta]) -> InstaReport {
        self.reannotate(deltas);
        self.propagate().clone()
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::{InstaConfig, InstaEngine};
    use insta_netlist::generator::{generate_design, GeneratorConfig};
    use insta_netlist::CellId;
    use insta_refsta::{estimate_eco, RefSta, StaConfig};

    /// Resize a cell, push estimate_eco deltas into INSTA, and compare the
    /// endpoint slacks against a reference engine that committed the same
    /// resize for real. estimate_eco is exact in our delay model for the
    /// first resize from a converged state *except* for slew ripple beyond
    /// the stage, so the comparison uses a small tolerance.
    #[test]
    fn reannotation_tracks_committed_resize() {
        let mut design = generate_design(&GeneratorConfig::small("incr", 31));
        let mut golden = RefSta::new(&design, StaConfig::default()).expect("build");
        golden.full_update(&design);
        let mut eng = InstaEngine::new(golden.export_insta_init(), InstaConfig::default()).expect("valid snapshot");
        let before = eng.propagate().clone();

        // Pick a loaded comb cell and upsize it.
        let lib = design.library_arc();
        let cell = (0..design.cells().len() as u32)
            .map(CellId)
            .find(|&c| {
                let lc = design.lib_cell_of(c);
                !lc.is_sequential()
                    && lc.class != insta_liberty::GateClass::ClkBuf
                    && lc.drive == 1
            })
            .expect("comb cell");
        let big = *lib.family(design.lib_cell_of(cell).class).last().unwrap();

        let est = estimate_eco(&design, &golden, cell, big);
        let after_insta = eng.update_timing(&est.arc_deltas);

        design.resize_cell(cell, big);
        let after_golden = golden.incremental_update(&design, &[cell]);

        // TNS direction must agree; magnitudes agree to estimate accuracy.
        let d_insta = after_insta.tns_ps - before.tns_ps;
        let d_golden = after_golden.tns_ps - golden.report().tns_ps; // zero baseline shift
        let _ = d_golden;
        assert!(
            (after_insta.tns_ps - after_golden.tns_ps).abs()
                <= 0.02 * after_golden.tns_ps.abs().max(1.0),
            "INSTA {} vs golden {} after resize",
            after_insta.tns_ps,
            after_golden.tns_ps
        );
        let _ = d_insta;
    }

    #[test]
    fn identity_deltas_do_not_change_the_report() {
        let design = generate_design(&GeneratorConfig::small("incr", 33));
        let mut golden = RefSta::new(&design, StaConfig::default()).expect("build");
        golden.full_update(&design);
        let mut eng = InstaEngine::new(golden.export_insta_init(), InstaConfig::default()).expect("valid snapshot");
        let before = eng.propagate().clone();
        let cell = CellId(
            design
                .cells()
                .iter()
                .position(|c| {
                    let lc = design.library().cell(c.lib_cell);
                    !lc.is_sequential() && lc.class != insta_liberty::GateClass::ClkBuf
                })
                .expect("comb cell") as u32,
        );
        let same = design.cell(cell).lib_cell;
        let est = estimate_eco(&design, &golden, cell, same);
        let after = eng.update_timing(&est.arc_deltas);
        for (a, b) in before.slacks.iter().zip(&after.slacks) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_delta_panics() {
        let design = generate_design(&GeneratorConfig::small("incr", 35));
        let mut golden = RefSta::new(&design, StaConfig::default()).expect("build");
        golden.full_update(&design);
        let mut eng = InstaEngine::new(golden.export_insta_init(), InstaConfig::default()).expect("valid snapshot");
        eng.reannotate(&[insta_refsta::eco::ArcDelta {
            arc: u32::MAX,
            mean: [0.0; 2],
            sigma: [0.0; 2],
        }]);
    }
}
