//! Incremental evaluation: arc re-annotation plus full-speed
//! re-propagation (paper Application 1).
//!
//! INSTA's incremental story differs from a CPU timer's: instead of
//! maintaining a dirty cone, it re-annotates the cloned arc delays (from
//! `estimate_eco` deltas) and re-runs the *whole* forward pass — which is
//! the point of the paper: full-graph propagation is so fast that
//! "incremental" reduces to re-annotate + propagate.

use crate::engine::InstaEngine;
use crate::error::InstaError;
use crate::metrics::InstaReport;
use crate::validate::{Issue, ValidationReport};
use insta_refsta::eco::ArcDelta;

impl InstaEngine {
    /// Validates a delta batch against the snapshot without mutating
    /// anything.
    ///
    /// # Errors
    ///
    /// Returns [`InstaError::Validate`] listing **every** offending delta
    /// — out-of-range arc ids, non-finite means, NaN/infinite/negative
    /// sigmas — so a client can fix its whole batch from one rejection.
    /// The checks mirror the snapshot-ingest arc validation: a delta that
    /// would have been rejected at ingest is rejected here too, *before*
    /// any annotation is written.
    pub fn validate_deltas(&self, deltas: &[ArcDelta]) -> Result<(), InstaError> {
        let mut report = ValidationReport::default();
        for (index, d) in deltas.iter().enumerate() {
            if d.arc as usize >= self.st.n_graph_arcs {
                report.record(Issue::DeltaArcOutOfRange {
                    index,
                    arc: d.arc,
                    n_graph_arcs: self.st.n_graph_arcs,
                });
            } else {
                // The batched dirty sweep seeds dirt on expansion-arc
                // children and propagates from level 1 upward; a child at
                // level 0 (only possible in a Trust-mode snapshot with a
                // corrupt level CSR) would silently fall outside the
                // sweep, so it is rejected here instead.
                let g = d.arc as usize;
                let range = self.st.expansion_start[g] as usize
                    ..self.st.expansion_start[g + 1] as usize;
                for &e in &self.st.expansion_arc[range] {
                    let child = self.st.arc_child[e as usize];
                    if crate::health::level_of(&self.st, child as usize) == 0 {
                        report.record(Issue::DeltaChildAtLevelZero {
                            index,
                            arc: d.arc,
                            child: self.st.node_orig[child as usize],
                        });
                    }
                }
            }
            for rf in 0..2 {
                if !d.mean[rf].is_finite() {
                    report.record(Issue::NonFiniteMean {
                        arc: d.arc as usize,
                        rf: rf as u8,
                        value: d.mean[rf],
                    });
                }
                if !d.sigma[rf].is_finite() || d.sigma[rf] < 0.0 {
                    report.record(Issue::InvalidSigma {
                        arc: d.arc as usize,
                        rf: rf as u8,
                        value: d.sigma[rf],
                    });
                }
            }
        }
        if report.total() > 0 {
            Err(InstaError::Validate(report))
        } else {
            Ok(())
        }
    }

    /// Overwrites the cloned delay annotation of the given graph arcs (all
    /// of their non-unate expansions included).
    ///
    /// The batch is applied **atomically with respect to validation**:
    /// every delta id is checked against the snapshot first, so a rejected
    /// batch leaves the annotations untouched.
    ///
    /// # Errors
    ///
    /// Returns [`InstaError::Validate`] (see
    /// [`validate_deltas`](Self::validate_deltas)) when any delta
    /// references an arc outside the snapshot.
    pub fn reannotate(&mut self, deltas: &[ArcDelta]) -> Result<(), InstaError> {
        self.validate_deltas(deltas)?;
        self.reannotate_unchecked(deltas);
        Ok(())
    }

    /// The write phase of [`reannotate`](Self::reannotate); callers must
    /// have validated `deltas` already.
    pub(crate) fn reannotate_unchecked(&mut self, deltas: &[ArcDelta]) {
        for d in deltas {
            let g = d.arc as usize;
            debug_assert!(g < self.st.n_graph_arcs, "unvalidated delta arc {g}");
            let range = self.st.expansion_start[g] as usize
                ..self.st.expansion_start[g + 1] as usize;
            for &e in &self.st.expansion_arc[range] {
                self.st.arc_mean[e as usize] = d.mean;
                self.st.arc_sigma[e as usize] = d.sigma;
            }
        }
        // LSE arrivals/weights and Top-K arrays were computed against the
        // old annotations.
        self.state.lse_tau_used = None;
        self.topk_synced = false;
        // Drift odometer: one update, batch-size/graph fraction of mass.
        self.drift.updates += 1;
        self.drift.mass += deltas.len() as f64 / self.st.n_graph_arcs.max(1) as f64;
        self.stats.incremental_updates += 1;
    }

    /// Re-annotates and re-propagates in one call, returning the fresh
    /// report (the per-iteration evaluation of the commercial sizing
    /// flow).
    ///
    /// Once the accumulated drift exceeds
    /// [`InstaConfig::drift_policy`](crate::engine::InstaConfig), updates
    /// degrade gracefully: the re-propagation is followed by a fresh
    /// differentiable forward pass and a full
    /// [`health_check`](Self::health_check) gate, and
    /// [`drift_exceeded`](Self::drift_exceeded) stays `true` until the
    /// caller resyncs annotations from its golden reference and calls
    /// [`reset_drift`](Self::reset_drift).
    ///
    /// # Errors
    ///
    /// [`InstaError::Validate`] for out-of-range deltas (annotations
    /// untouched), [`InstaError::Runtime`] /
    /// [`InstaError::Numeric`] / [`InstaError::Cancelled`] from the
    /// propagation itself (state may be half-updated — run inside a
    /// [`TimingSession`](crate::session::TimingSession) to get automatic
    /// rollback).
    pub fn update_timing(&mut self, deltas: &[ArcDelta]) -> Result<InstaReport, InstaError> {
        self.validate_deltas(deltas)?;
        self.update_timing_prevalidated(deltas)
    }

    /// [`update_timing`](Self::update_timing) minus the validation pass
    /// (the session layer validates before checkpointing).
    pub(crate) fn update_timing_prevalidated(
        &mut self,
        deltas: &[ArcDelta],
    ) -> Result<InstaReport, InstaError> {
        self.reannotate_unchecked(deltas);
        if self.drift_exceeded() {
            // Degraded path: the incremental result is no longer trusted
            // blind — refresh the differentiable state and gate the pass
            // on a full poison scan. The fused sweep computes both output
            // families in one pass over the levels, bit-identical to
            // `try_propagate` + `try_forward_lse` back to back.
            self.stats.degraded_passes += 1;
            self.try_propagate_fused()?;
            self.health_check()?;
        } else {
            self.try_propagate()?;
        }
        Ok(self.state.report.clone().expect("just propagated"))
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::{InstaConfig, InstaEngine};
    use insta_netlist::generator::{generate_design, GeneratorConfig};
    use insta_netlist::CellId;
    use insta_refsta::{estimate_eco, RefSta, StaConfig};

    /// Resize a cell, push estimate_eco deltas into INSTA, and compare the
    /// endpoint slacks against a reference engine that committed the same
    /// resize for real. estimate_eco is exact in our delay model for the
    /// first resize from a converged state *except* for slew ripple beyond
    /// the stage, so the comparison uses a small tolerance.
    #[test]
    fn reannotation_tracks_committed_resize() {
        let mut design = generate_design(&GeneratorConfig::small("incr", 31));
        let mut golden = RefSta::new(&design, StaConfig::default()).expect("build");
        golden.full_update(&design);
        let mut eng = InstaEngine::new(golden.export_insta_init(), InstaConfig::default()).expect("valid snapshot");
        let before = eng.propagate().clone();

        // Pick a loaded comb cell and upsize it.
        let lib = design.library_arc();
        let cell = (0..design.cells().len() as u32)
            .map(CellId)
            .find(|&c| {
                let lc = design.lib_cell_of(c);
                !lc.is_sequential()
                    && lc.class != insta_liberty::GateClass::ClkBuf
                    && lc.drive == 1
            })
            .expect("comb cell");
        let big = *lib.family(design.lib_cell_of(cell).class).last().unwrap();

        let est = estimate_eco(&design, &golden, cell, big);
        let after_insta = eng.update_timing(&est.arc_deltas).expect("in-range deltas");

        design.resize_cell(cell, big);
        let after_golden = golden.incremental_update(&design, &[cell]);

        // TNS direction must agree; magnitudes agree to estimate accuracy.
        let d_insta = after_insta.tns_ps - before.tns_ps;
        let d_golden = after_golden.tns_ps - golden.report().tns_ps; // zero baseline shift
        let _ = d_golden;
        assert!(
            (after_insta.tns_ps - after_golden.tns_ps).abs()
                <= 0.02 * after_golden.tns_ps.abs().max(1.0),
            "INSTA {} vs golden {} after resize",
            after_insta.tns_ps,
            after_golden.tns_ps
        );
        let _ = d_insta;
    }

    #[test]
    fn identity_deltas_do_not_change_the_report() {
        let design = generate_design(&GeneratorConfig::small("incr", 33));
        let mut golden = RefSta::new(&design, StaConfig::default()).expect("build");
        golden.full_update(&design);
        let mut eng = InstaEngine::new(golden.export_insta_init(), InstaConfig::default()).expect("valid snapshot");
        let before = eng.propagate().clone();
        let cell = CellId(
            design
                .cells()
                .iter()
                .position(|c| {
                    let lc = design.library().cell(c.lib_cell);
                    !lc.is_sequential() && lc.class != insta_liberty::GateClass::ClkBuf
                })
                .expect("comb cell") as u32,
        );
        let same = design.cell(cell).lib_cell;
        let est = estimate_eco(&design, &golden, cell, same);
        let after = eng.update_timing(&est.arc_deltas).expect("in-range deltas");
        for (a, b) in before.slacks.iter().zip(&after.slacks) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    /// Regression (ISSUE 5): the batched dirty-mask sweep seeds dirt on
    /// expansion-arc children and starts propagation at level 1, so a
    /// delta child at level 0 would be silently skipped. Only a corrupt
    /// Trust-mode level CSR can produce one — `validate_deltas` must
    /// reject it as a typed fatal issue instead of sweeping past it.
    #[test]
    fn trust_mode_level_zero_delta_child_is_a_typed_fatal_rejection() {
        let design = generate_design(&GeneratorConfig::small("incr", 41));
        let mut golden = RefSta::new(&design, StaConfig::default()).expect("build");
        golden.full_update(&design);
        let mut eng = InstaEngine::new(
            golden.export_insta_init(),
            InstaConfig {
                validation: crate::validate::ValidationMode::Trust,
                ..InstaConfig::default()
            },
        )
        .expect("trust accepts");

        // Pick a graph arc with an expansion child at level 1, then
        // corrupt the level CSR (Trust mode never re-checks it) so that
        // child reads as level 0.
        let mut found = None;
        'outer: for g in 0..eng.st.n_graph_arcs {
            let r = eng.st.expansion_start[g] as usize..eng.st.expansion_start[g + 1] as usize;
            for &e in &eng.st.expansion_arc[r] {
                let c = eng.st.arc_child[e as usize];
                if crate::health::level_of(&eng.st, c as usize) == 1 {
                    found = Some((g, c));
                    break 'outer;
                }
            }
        }
        let (g, child) = found.expect("a level-1 arc child");
        // `child` is at level 1, so `child + 1 <= level_start[2]`: the
        // CSR stays sorted and only the level-0/1 boundary moves.
        eng.st.level_start[1] = child + 1;

        let deltas = [insta_refsta::eco::ArcDelta {
            arc: g as u32,
            mean: [1.0; 2],
            sigma: [0.1; 2],
        }];
        let err = eng.validate_deltas(&deltas).expect_err("level-0 child");
        let crate::error::InstaError::Validate(report) = &err else {
            panic!("expected Validate, got {err:?}");
        };
        assert!(report.rejects_repair(), "must be fatal: {report}");
        assert!(matches!(
            report.issues[0],
            crate::validate::Issue::DeltaChildAtLevelZero { index: 0, .. }
        ));
        assert!(err.to_string().contains("timing level 0"), "{err}");
        // update_timing routes through the same validation: annotations
        // stay untouched.
        let err2 = eng.update_timing(&deltas).expect_err("same rejection");
        assert_eq!(err2.category(), "validate");
    }

    #[test]
    fn out_of_range_deltas_are_a_typed_error_and_leave_annotations_untouched() {
        let design = generate_design(&GeneratorConfig::small("incr", 35));
        let mut golden = RefSta::new(&design, StaConfig::default()).expect("build");
        golden.full_update(&design);
        let mut eng = InstaEngine::new(golden.export_insta_init(), InstaConfig::default()).expect("valid snapshot");
        let before = eng.propagate().clone();
        let n_arcs = eng.st.n_graph_arcs as u32;
        // A mixed batch: a bad id at position 0 and 2, a valid (but
        // perturbing) delta between them. Batch rejection must be atomic.
        let deltas = [
            insta_refsta::eco::ArcDelta {
                arc: u32::MAX,
                mean: [0.0; 2],
                sigma: [0.0; 2],
            },
            insta_refsta::eco::ArcDelta {
                arc: 0,
                mean: [999.0; 2],
                sigma: [9.0; 2],
            },
            insta_refsta::eco::ArcDelta {
                arc: n_arcs,
                mean: [0.0; 2],
                sigma: [0.0; 2],
            },
        ];
        let err = eng.reannotate(&deltas).expect_err("must reject");
        assert_eq!(err.category(), "validate");
        assert!(!err.poisons_state());
        let text = err.to_string();
        assert!(text.contains("out of range"), "{text}");
        let crate::error::InstaError::Validate(report) = &err else {
            panic!("expected Validate, got {err:?}");
        };
        // Both offenders listed, not just the first.
        assert_eq!(report.total(), 2, "{report}");
        // The valid middle delta was NOT applied: re-propagating
        // reproduces the untouched report bit-for-bit.
        let after = eng.propagate().clone();
        assert_eq!(
            before.slacks.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            after.slacks.iter().map(|s| s.to_bits()).collect::<Vec<_>>()
        );
        // update_timing rejects identically.
        let err2 = eng.update_timing(&deltas).expect_err("must reject");
        assert_eq!(err2.category(), "validate");
    }
}
