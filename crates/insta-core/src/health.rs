//! Numeric containment: poison detection over the propagation state.
//!
//! Validation keeps non-finite statistics out of the snapshot, but
//! [`ValidationMode::Trust`](crate::validate::ValidationMode::Trust) skips
//! it and re-annotation ([`InstaEngine::reannotate`]) writes new deltas
//! after construction — so NaN can still enter the engine. This module
//! provides two containment layers:
//!
//! * **Debug asserts in the hot path**: after each level, the kernels
//!   (in debug builds only) scan the level window they just wrote and
//!   panic on the first non-finite value, naming the node and level. In
//!   release builds the checks compile out — zero overhead.
//! * **An explicit [`InstaEngine::health_check`] API**: a full O(state)
//!   scan callers can run at any time, returning
//!   [`InstaError::Numeric`] localizing the first poisoned value to its
//!   array, node, original node id, level, and transition.

use crate::engine::{InstaEngine, Static};
use crate::error::{InstaError, Kernel, PoisonedArray};
use crate::topk::NO_SP;

/// Timing level of a renumbered node (binary search over the level CSR).
pub(crate) fn level_of(st: &Static, v: usize) -> usize {
    st.level_start.partition_point(|&s| s as usize <= v).saturating_sub(1)
}

impl InstaEngine {
    /// Scans the whole propagation state for numeric poison and returns
    /// the first non-finite value found as [`InstaError::Numeric`],
    /// localized to array, node, level, and transition.
    ///
    /// Checked, in order: occupied Top-K arrival/mean/sigma slots, smooth
    /// (LSE) arrivals (where `-inf` means "unreached" and is healthy), and
    /// both gradient arrays. The scan is read-only and O(state size); run
    /// it after a propagation over data that bypassed validation (Trust
    /// mode, [`reannotate`](InstaEngine::reannotate)) or before consuming
    /// gradients in an optimizer step.
    pub fn health_check(&self) -> Result<(), InstaError> {
        let st = &self.st;
        let state = &self.state;
        let k = state.k;
        let numeric = |kernel, array, idx_node: usize, rf: usize, value: f64| {
            Err(InstaError::Numeric {
                kernel,
                array,
                node: idx_node as u32,
                orig_node: st.node_orig[idx_node],
                level: level_of(st, idx_node),
                rf: rf as u8,
                value,
            })
        };
        // Top-K queues: only occupied slots (sp set) carry meaning.
        for (i, &sp) in state.topk_sp.iter().enumerate() {
            if sp == NO_SP {
                continue;
            }
            let (node, rf) = (i / (2 * k), (i / k) % 2);
            let a = state.topk_arrival[i];
            if !a.is_finite() {
                return numeric(Kernel::Forward, PoisonedArray::TopKArrival, node, rf, a);
            }
            let m = state.topk_mean[i];
            if !m.is_finite() {
                return numeric(Kernel::Forward, PoisonedArray::TopKMean, node, rf, m);
            }
            let s = state.topk_sigma[i];
            if !s.is_finite() || s < 0.0 {
                return numeric(Kernel::Forward, PoisonedArray::TopKSigma, node, rf, s);
            }
        }
        // Smooth arrivals: -inf = unreached (healthy), NaN/+inf = poison.
        for (i, &a) in state.lse_arrival.iter().enumerate() {
            if a.is_nan() || a == f64::INFINITY {
                return numeric(Kernel::ForwardLse, PoisonedArray::LseArrival, i / 2, i % 2, a);
            }
        }
        // Gradients must always be finite (zero when unseeded).
        for (i, &g) in state.grad_arrival.iter().enumerate() {
            if !g.is_finite() {
                return numeric(Kernel::Backward, PoisonedArray::GradArrival, i / 2, i % 2, g);
            }
        }
        for (ai, g) in state.grad_arc.iter().enumerate() {
            for rf in 0..2 {
                if !g[rf].is_finite() {
                    let node = st.arc_child[ai] as usize;
                    return numeric(Kernel::Backward, PoisonedArray::GradArc, node, rf, g[rf]);
                }
            }
        }
        Ok(())
    }
}

/// Debug-build poison check over the Top-K window of level `l`, run by the
/// forward kernel right after writing it.
#[cfg(debug_assertions)]
pub(crate) fn debug_assert_topk_level_clean(
    st: &Static,
    state: &crate::engine::State,
    l: usize,
) {
    let k = state.k;
    let r = st.level_range(l);
    for i in r.start * 2 * k..r.end * 2 * k {
        if state.topk_sp[i] != NO_SP {
            debug_assert!(
                state.topk_arrival[i].is_finite(),
                "poisoned top-k arrival {} at node {} (level {l})",
                state.topk_arrival[i],
                i / (2 * k),
            );
        }
    }
}

/// Debug-build poison check over the LSE window of level `l`.
#[cfg(debug_assertions)]
pub(crate) fn debug_assert_lse_level_clean(st: &Static, state: &crate::engine::State, l: usize) {
    let r = st.level_range(l);
    for i in r.start * 2..r.end * 2 {
        let a = state.lse_arrival[i];
        debug_assert!(
            !a.is_nan() && a != f64::INFINITY,
            "poisoned lse arrival {a} at node {} (level {l})",
            i / 2,
        );
    }
}

/// Debug-build poison check over the gradient window of level `l`.
#[cfg(debug_assertions)]
pub(crate) fn debug_assert_grad_level_clean(st: &Static, state: &crate::engine::State, l: usize) {
    let r = st.level_range(l);
    for i in r.start * 2..r.end * 2 {
        let g = state.grad_arrival[i];
        debug_assert!(
            g.is_finite(),
            "poisoned arrival gradient {g} at node {} (level {l})",
            i / 2,
        );
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::{InstaConfig, InstaEngine};
    use crate::error::InstaError;
    use crate::validate::ValidationMode;
    use insta_netlist::generator::{generate_design, GeneratorConfig};
    use insta_refsta::{RefSta, StaConfig};

    fn engine(seed: u64) -> InstaEngine {
        let d = generate_design(&GeneratorConfig::small("health", seed));
        let mut sta = RefSta::new(&d, StaConfig::default()).expect("build");
        sta.full_update(&d);
        InstaEngine::new(sta.export_insta_init(), InstaConfig::default())
            .expect("valid snapshot")
    }

    #[test]
    fn healthy_state_passes() {
        let mut eng = engine(61);
        eng.propagate();
        eng.forward_lse();
        eng.backward_tns();
        eng.health_check().expect("healthy run");
    }

    #[test]
    fn poison_is_localized_to_node_and_level() {
        let mut eng = engine(62);
        eng.propagate();
        // Poison an occupied top-k slot directly (simulating what Trust
        // mode or a corrupt re-annotation would let through).
        let i = eng
            .state
            .topk_sp
            .iter()
            .position(|&sp| sp != crate::topk::NO_SP)
            .expect("some slot occupied");
        eng.state.topk_arrival[i] = f64::NAN;
        let err = eng.health_check().expect_err("poison must be found");
        match &err {
            InstaError::Numeric { node, level, value, .. } => {
                assert_eq!(*node as usize, i / (2 * eng.state.k));
                assert!(value.is_nan());
                assert_eq!(*level, super::level_of(&eng.st, *node as usize));
            }
            other => panic!("expected Numeric, got {other}"),
        }
        assert_eq!(err.category(), "numeric");
        let text = err.to_string();
        assert!(text.contains("level"), "{text}");
    }

    #[test]
    fn trust_mode_nan_is_caught_by_health_check_not_a_panic() {
        let d = generate_design(&GeneratorConfig::small("health", 63));
        let mut sta = RefSta::new(&d, StaConfig::default()).expect("build");
        sta.full_update(&d);
        let mut init = sta.export_insta_init();
        init.fanin[0].mean[0] = f64::NAN;
        let mut eng = InstaEngine::new(
            init,
            InstaConfig {
                validation: ValidationMode::Trust,
                // Debug asserts in the hot path would catch the NaN first
                // in debug builds; a single thread keeps this test about
                // the health_check API (NaN arrivals never win a max, so
                // NaN only reaches the queues through the single-fanin
                // fast path, which release builds propagate silently).
                ..InstaConfig::default()
            },
        )
        .expect("trust skips validation");
        // NaN never compares greater, so propagation completes without
        // panicking; the poison surfaces in the state scan.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            eng.propagate();
        }));
        if result.is_ok() {
            // Release build (or the NaN landed on a dead path): the
            // explicit scan must still find or clear it.
            let _ = eng.health_check();
        }
    }
}
