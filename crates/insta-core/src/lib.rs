//! The INSTA engine: ultra-fast, differentiable, statistical timing
//! propagation (the paper's primary contribution).
//!
//! INSTA never computes delays; it is initialized from a reference engine's
//! [`InstaInit`](insta_refsta::InstaInit) snapshot (arc delay distributions,
//! launch arrivals, required times, clock-tree credit arrays) and performs
//! only propagation:
//!
//! * [`engine`] — the engine state: level-contiguous SoA arrays (the GPU
//!   memory layout of Fig. 3), built by renumbering nodes in level-major
//!   order so every level is a contiguous slice.
//! * [`topk`] — the fixed-size Top-K priority queue with **unique
//!   startpoints** (paper Algorithm 2); the CPPR mechanism.
//! * [`forward`] — the forward "kernel" (paper Algorithm 1): per-level
//!   data-parallel Top-K statistical arrival merging with rise/fall and
//!   unateness handling, executed by scoped CPU threads standing in for the
//!   CUDA grid (see DESIGN.md substitutions).
//! * [`lse`] — the differentiable forward pass: numerically stable
//!   Log-Sum-Exp smooth-max merging (paper Eq. 4–5) with stored softmax
//!   path weights.
//! * [`backward`] — the backward kernel: per-level gradient backpropagation
//!   of ∂TNS/∂(arc delay) through the stored weights (paper Eq. 6), i.e.
//!   the "timing gradients" that drive INSTA-Size and INSTA-Place.
//! * [`metrics`] — endpoint slack / WNS / TNS evaluation with
//!   SP-matched required times, CPPR credit, and exceptions.
//! * [`incremental`] — arc re-annotation from `estimate_eco` deltas plus
//!   full-speed re-propagation (the paper's incremental evaluation flow).
//! * [`hold`] — hold (early/min) propagation reusing the Top-K kernel via
//!   corner negation (engine parity with the reference's hold analysis;
//!   an extension beyond the paper's setup-only scope).
//! * [`correlate`] — correlation and mismatch statistics used by the
//!   paper's Fig. 6 / Table I style comparisons.
//! * [`error`] — the typed error taxonomy ([`InstaError`]) of the
//!   untrusted-input and runtime paths.
//! * [`validate`] — snapshot validation with Strict / Repair / Trust
//!   modes (see DESIGN.md "Error taxonomy and failure policy").
//! * [`session`] / [`checkpoint`] — transactional timing sessions:
//!   copy-on-write epoch checkpoints, bit-identical rollback on poison,
//!   cooperative per-level cancellation with deadlines, and drift-audited
//!   degradation (see DESIGN.md "Session lifecycle and failure policy").
//! * [`batch`] — batched multi-scenario evaluation: one shared sweep
//!   propagates S delta-sets at once in SoA scenario lanes, bit-identical
//!   per scenario to S serial sessions, with per-scenario quarantine (see
//!   DESIGN.md "Batched scenario evaluation").
//! * [`snapshot`] — the immutable committed-epoch view
//!   ([`TimingSnapshot`](snapshot::TimingSnapshot)): slacks, arrivals,
//!   WNS/TNS, and epoch captured at commit time so the serve layer can
//!   publish MVCC reads by pointer swap while a writer mutates the next
//!   epoch (see DESIGN.md "Service architecture").
//! * [`stat`] — the statistical numerics backends behind the kernels:
//!   the [`StatModel`](stat::StatModel) trait seam with the paper's
//!   Gaussian POCV as the default impl and a fixed-bin histogram impl
//!   that converges to POCV as bins grow (see DESIGN.md "Statistical
//!   backends").
//! * [`persist`] — the canonical binary codec for durable state: writer
//!   ops, the engine's re-annotatable delay state, and snapshot images,
//!   all bit-exact (`to_bits` floats) under the serve layer's write-ahead
//!   log and checkpoints (see DESIGN.md "Durability and recovery").
//! * [`trace`] — the observability layer: a [`TraceSink`](trace::TraceSink)
//!   threaded through every kernel pass recording spans, per-level
//!   duration/touched-node profiles (the paper's Fig. 9 breakdown via
//!   [`InstaEngine::perf_report`](engine::InstaEngine::perf_report)),
//!   batch lane occupancy, and session/incident events — zero overhead
//!   when disabled (see DESIGN.md "Observability").
//!
//! # Examples
//!
//! ```
//! use insta_netlist::generator::{generate_design, GeneratorConfig};
//! use insta_refsta::{RefSta, StaConfig};
//! use insta_engine::{InstaConfig, InstaEngine};
//!
//! let design = generate_design(&GeneratorConfig::small("demo", 42));
//! let mut golden = RefSta::new(&design, StaConfig::default())?;
//! golden.full_update(&design);
//!
//! let mut engine = InstaEngine::new(golden.export_insta_init(), InstaConfig::default())?;
//! engine.propagate();
//! let report = engine.report();
//! assert_eq!(report.slacks.len(), golden.report().endpoints.len());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod backward;
pub mod batch;
pub mod checkpoint;
pub mod correlate;
pub mod engine;
pub mod error;
pub mod forward;
pub mod health;
pub mod hold;
pub mod incremental;
pub mod lse;
pub mod metrics;
pub mod parallel;
pub mod persist;
#[cfg(any(test, feature = "scalar-reference"))]
pub mod scalar_ref;
pub mod session;
pub mod snapshot;
pub mod stat;
pub mod topk;
pub mod trace;
pub mod validate;

pub use batch::{
    BatchOptions, CornerTransform, DeltaSet, McmmReport, ModeMask, Scenario, ScenarioReport,
};
pub use correlate::{pearson, MismatchStats};
pub use engine::{DriftPolicy, InstaConfig, InstaEngine};
pub use error::{
    Incident, IncidentLog, InstaError, Kernel, PoisonedArray, RuntimeIncident, ServiceIncident,
};
pub use hold::{hold_attributes, HoldAttributes};
pub use metrics::{EngineCounters, InstaReport};
pub use persist::{
    decode_snapshot, encode_snapshot, Dec, Enc, EngineDurableState, PersistError, WriterOp,
};
pub use session::{SessionStatus, TimingSession};
pub use snapshot::TimingSnapshot;
pub use stat::{FixedBinHistogram, GaussianPocv, StatBackendKind, StatModel, StatModelConfig};
pub use topk::TopKQueue;
pub use trace::{LevelProfile, PerfReport, PerfRow};
pub use validate::{ValidationMode, ValidationReport};
// Session control handles, re-exported so engine clients don't need a
// direct `insta_support` dependency.
pub use insta_support::timer::{CancelToken, Deadline};
