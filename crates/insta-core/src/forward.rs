//! The forward kernel — paper Algorithm 1.
//!
//! Per timing level, every pin is processed independently ("each pin on the
//! same timing level is mapped to a CUDA thread", Fig. 3). For each
//! rise/fall condition and each slot `k`, the kernel reads the parents'
//! k-th Top-K entries (with the parent transition flipped on
//! negative-unate arcs), adds the cloned arc delay distribution
//! (mean-additive, sigma in quadrature, Eqs. 1–3), and pushes the candidate
//! through the unique-startpoint priority-queue update (Algorithm 2).
//!
//! Because the engine renumbered nodes level-major, the level's state is a
//! contiguous window: the arrays split into an immutable `done` prefix
//! (all earlier levels — where every parent lives) and a mutable `current`
//! window that scoped worker threads process in disjoint chunks.

use crate::engine::{InstaEngine, State, Static};
use crate::error::{InstaError, Kernel, RuntimeIncident};
use crate::parallel::{chaos, resolve_threads, Interrupt, MergeArena, PanicCell, PAR_THRESHOLD};
use crate::stat::{with_model, StatModel};
use crate::topk::{restore_topk_desc, update_topk_slices, Candidate, NO_SP};
use crate::trace::LevelProfile;
use std::panic::{catch_unwind, AssertUnwindSafe};

impl InstaEngine {
    /// Runs the evaluation forward pass (Algorithm 1) over every level and
    /// refreshes the endpoint report.
    ///
    /// # Panics
    ///
    /// Panics if a worker panic could not be contained (see
    /// [`try_propagate`](InstaEngine::try_propagate) for the fallible
    /// variant).
    pub fn propagate(&mut self) -> &crate::metrics::InstaReport {
        if let Err(e) = self.try_propagate() {
            panic!("propagate failed: {e}");
        }
        self.state.report.as_ref().expect("just set")
    }

    /// Fallible [`propagate`](InstaEngine::propagate): a data-parallel
    /// worker panic is contained, the level is re-executed serially
    /// (bit-identical — level windows are pure functions of earlier
    /// levels), and the incident is recorded in
    /// [`last_incident`](InstaEngine::last_incident). Only when the serial
    /// re-execution *also* fails does this return
    /// [`InstaError::Runtime`]; the engine state is then unusable until
    /// the next successful pass.
    pub fn try_propagate(&mut self) -> Result<&crate::metrics::InstaReport, InstaError> {
        self.last_incident = None;
        // The pass rewrites the Top-K arrays whether it succeeds or not;
        // only a completed pass leaves them in sync with the annotations.
        self.topk_writes += 1;
        self.topk_synced = false;
        self.trace.begin("forward");
        let res = with_model!(&self.backend, m => forward(
            &self.st,
            &mut self.state,
            self.cfg.n_threads,
            self.interrupt.as_ref(),
            self.trace.profile_mut(Kernel::Forward),
            m,
        ));
        self.trace
            .end_with(&[("ok", if res.is_ok() { 1.0 } else { 0.0 })]);
        match res {
            Ok(incident) => {
                if let Some(inc) = &incident {
                    self.record_incident(inc);
                }
                self.last_incident = incident;
            }
            Err(e) => {
                if let InstaError::Runtime(inc) = &e {
                    self.record_incident(inc);
                }
                return Err(e);
            }
        }
        let report = with_model!(&self.backend, m =>
            crate::metrics::evaluate(&self.st, &self.state, self.cfg.cppr, m));
        self.state.report = Some(report);
        self.topk_synced = true;
        Ok(self.state.report.as_ref().expect("just set"))
    }

    /// Runs the fused evaluation + differentiable forward sweep: one pass
    /// over the levels computes both the Top-K queues and the smooth
    /// (LSE) arrivals, leaving the engine in the same state as
    /// [`propagate`](InstaEngine::propagate) followed by
    /// [`forward_lse`](InstaEngine::forward_lse) — bit-identically —
    /// while touching each level's working set once.
    ///
    /// # Panics
    ///
    /// Panics if a worker panic could not be contained (see
    /// [`try_propagate_fused`](InstaEngine::try_propagate_fused)).
    pub fn propagate_fused(&mut self) -> &crate::metrics::InstaReport {
        if let Err(e) = self.try_propagate_fused() {
            panic!("propagate_fused failed: {e}");
        }
        self.state.report.as_ref().expect("just set")
    }

    /// Fallible [`propagate_fused`](InstaEngine::propagate_fused) with the
    /// same worker-panic containment contract as
    /// [`try_propagate`](InstaEngine::try_propagate). Per-level kernel
    /// profiles keep attributing evaluation time to the forward profile
    /// and LSE time to the LSE profile — fusion interleaves the two level
    /// bodies, it does not blur them.
    pub fn try_propagate_fused(&mut self) -> Result<&crate::metrics::InstaReport, InstaError> {
        self.last_incident = None;
        // Both output families are rewritten whether the pass succeeds or
        // not; only a completed pass leaves them in sync.
        self.topk_writes += 1;
        self.topk_synced = false;
        self.lse_writes += 1;
        self.state.lse_tau_used = None;
        self.trace.begin("forward_fused");
        let (prof_fwd, prof_lse) = self.trace.profiles_fused();
        let res = with_model!(&self.backend, m => forward_fused(
            &self.st,
            &mut self.state,
            self.cfg.lse_tau,
            self.cfg.n_threads,
            self.interrupt.as_ref(),
            prof_fwd,
            prof_lse,
            m,
        ));
        self.trace
            .end_with(&[("ok", if res.is_ok() { 1.0 } else { 0.0 })]);
        match res {
            Ok(incident) => {
                if let Some(inc) = &incident {
                    self.record_incident(inc);
                }
                self.last_incident = incident;
            }
            Err(e) => {
                if let InstaError::Runtime(inc) = &e {
                    self.record_incident(inc);
                }
                return Err(e);
            }
        }
        self.state.lse_tau_used = Some(self.cfg.lse_tau);
        let report = with_model!(&self.backend, m =>
            crate::metrics::evaluate(&self.st, &self.state, self.cfg.cppr, m));
        self.state.report = Some(report);
        self.topk_synced = true;
        Ok(self.state.report.as_ref().expect("just set"))
    }
}

/// Applies the startpoint launch arrivals (cloned from the reference tool)
/// for sources whose node lies in `range`.
pub(crate) fn seed_sources<M: StatModel>(
    st: &Static,
    state: &mut State,
    range: std::ops::Range<usize>,
    model: &M,
) {
    let k = state.k;
    for s in &st.sources {
        let v = s.node as usize;
        if !range.contains(&v) {
            continue;
        }
        for rf in 0..2 {
            let idx = (v * 2 + rf) * k;
            state.topk_mean[idx] = s.mean[rf];
            state.topk_sigma[idx] = s.sigma[rf];
            state.topk_arrival[idx] = model.corner_late(s.mean[rf], s.sigma[rf], st.n_sigma);
            state.topk_sp[idx] = s.sp;
        }
    }
}

pub(crate) fn forward<M: StatModel>(
    st: &Static,
    state: &mut State,
    n_threads: usize,
    interrupt: Option<&Interrupt>,
    mut prof: Option<&mut LevelProfile>,
    model: &M,
) -> Result<Option<RuntimeIncident>, InstaError> {
    // Restart the interrupt's reporting clock at pass entry: a token or
    // deadline reused across passes must report elapsed-in-*this*-pass.
    let restarted = interrupt.map(Interrupt::restarted);
    let interrupt = restarted.as_ref();

    // Reset the final Top-K structures (pre-kernel initialization).
    state.topk_arrival.fill(f64::NEG_INFINITY);
    state.topk_sp.fill(NO_SP);
    seed_sources(st, state, 0..st.n, model);

    let nt = resolve_threads(n_threads);
    // One merge arena per worker, reused across every level of the pass.
    let mut arenas = MergeArena::bank(nt);
    let mut recovered: Option<RuntimeIncident> = None;
    if let Some(p) = prof.as_deref_mut() {
        p.passes += 1;
    }
    for l in 1..st.num_levels() {
        // Cooperative cancellation: one poll per level bounds the latency
        // between a cancel/deadline firing and this return by one level's
        // work. Levels before `l` are fully written, `l` and later are
        // untouched — the session layer rolls the mix back.
        if let Some(e) = interrupt.and_then(|i| i.check(Kernel::Forward, l)) {
            return Err(e);
        }
        if let Some(inc) = forward_level(st, state, nt, &mut arenas, l, prof.as_deref_mut(), model)?
        {
            recovered.get_or_insert(inc);
        }
    }
    Ok(recovered)
}

/// One level of the evaluation forward pass: the parallel launch, panic
/// containment + serial retry, and per-level profiling for level `l`.
/// Shared verbatim by [`forward`] and the fused sweep
/// ([`forward_fused`]) — fusion interleaves *whole level bodies*, so the
/// state either kernel reads is exactly what the unfused pass would have
/// produced, and bit-identity of the fused sweep is by construction.
#[allow(clippy::too_many_arguments)]
pub(crate) fn forward_level<M: StatModel>(
    st: &Static,
    state: &mut State,
    nt: usize,
    arenas: &mut [MergeArena],
    l: usize,
    mut prof: Option<&mut LevelProfile>,
    model: &M,
) -> Result<Option<RuntimeIncident>, InstaError> {
    let k = state.k;
    let stride = 2 * k;
    let mut recovered: Option<RuntimeIncident> = None;
    {
        let r = st.level_range(l);
        let (base, len) = (r.start, r.len());
        if len == 0 {
            return Ok(None);
        }
        // Two timestamp reads per level, only when a profile is attached.
        let t_level = prof.is_some().then(std::time::Instant::now);
        let panicked = {
            let split = base * stride;
            let (arr_done, arr_cur) = state.topk_arrival.split_at_mut(split);
            let (mean_done, mean_cur) = state.topk_mean.split_at_mut(split);
            let (sigma_done, sigma_cur) = state.topk_sigma.split_at_mut(split);
            let (sp_done, sp_cur) = state.topk_sp.split_at_mut(split);
            let arr_cur = &mut arr_cur[..len * stride];
            let mean_cur = &mut mean_cur[..len * stride];
            let sigma_cur = &mut sigma_cur[..len * stride];
            let sp_cur = &mut sp_cur[..len * stride];

            let _ = arr_done; // corner arrivals are recomputed from mean/sigma
            if nt <= 1 || len < PAR_THRESHOLD {
                level_chunk::<M, false>(
                    st, k, base, mean_done, sigma_done, sp_done, arr_cur, mean_cur, sigma_cur,
                    sp_cur, &mut arenas[0], model,
                );
                None
            } else {
                // Carve the current window into per-thread chunks (node
                // granular). A panicking chunk is contained by the cell;
                // its siblings finish normally and the scope joins clean.
                let chunk_nodes = len.div_ceil(nt);
                let chunk_elems = chunk_nodes * stride;
                let cell = PanicCell::new();
                std::thread::scope(|scope| {
                    let mut rest = (arr_cur, mean_cur, sigma_cur, sp_cur);
                    let mut rest_arenas = &mut arenas[..];
                    let mut cbase = base;
                    loop {
                        let take = chunk_elems.min(rest.0.len());
                        if take == 0 {
                            break;
                        }
                        let (a, ra) = rest.0.split_at_mut(take);
                        let (m, rm) = rest.1.split_at_mut(take);
                        let (sg, rs) = rest.2.split_at_mut(take);
                        let (sp, rsp) = rest.3.split_at_mut(take);
                        rest = (ra, rm, rs, rsp);
                        let (ar, rar) = rest_arenas.split_at_mut(1);
                        rest_arenas = rar;
                        let arena = &mut ar[0];
                        let (md, sd, spd) = (&*mean_done, &*sigma_done, &*sp_done);
                        let cell = &cell;
                        scope.spawn(move || {
                            cell.run(cbase..cbase + take / stride, || {
                                chaos::maybe_panic(Kernel::Forward, l);
                                level_chunk::<M, false>(
                                    st, k, cbase, md, sd, spd, a, m, sg, sp, arena, model,
                                );
                            });
                        });
                        cbase += take / stride;
                    }
                });
                cell.take()
            }
        };
        if let Some((chunk, message)) = panicked {
            let incident = RuntimeIncident {
                kernel: Kernel::Forward,
                level: l,
                chunk,
                message,
                serial_retry_failed: false,
            };
            // Serial re-execution: reset the window to its post-global-
            // reset state (the partial chunk writes become invisible),
            // re-apply launch seeds landing inside it, and recompute from
            // the untouched earlier levels.
            let retry = catch_unwind(AssertUnwindSafe(|| {
                let w = base * stride..(base + len) * stride;
                state.topk_arrival[w.clone()].fill(f64::NEG_INFINITY);
                state.topk_sp[w].fill(NO_SP);
                seed_sources(st, state, base..base + len, model);
                chaos::maybe_panic(Kernel::Forward, l);
                let split = base * stride;
                let (_, arr_cur) = state.topk_arrival.split_at_mut(split);
                let (mean_done, mean_cur) = state.topk_mean.split_at_mut(split);
                let (sigma_done, sigma_cur) = state.topk_sigma.split_at_mut(split);
                let (sp_done, sp_cur) = state.topk_sp.split_at_mut(split);
                level_chunk::<M, false>(
                    st,
                    k,
                    base,
                    mean_done,
                    sigma_done,
                    sp_done,
                    &mut arr_cur[..len * stride],
                    &mut mean_cur[..len * stride],
                    &mut sigma_cur[..len * stride],
                    &mut sp_cur[..len * stride],
                    &mut arenas[0],
                    model,
                );
            }));
            match retry {
                Ok(()) => {
                    recovered.get_or_insert(incident);
                }
                Err(_) => {
                    return Err(InstaError::Runtime(RuntimeIncident {
                        serial_retry_failed: true,
                        ..incident
                    }))
                }
            }
        }
        if let (Some(p), Some(t0)) = (prof.as_deref_mut(), t_level) {
            p.record_level(l, t0.elapsed().as_nanos() as u64, len as u64);
        }
    }
    #[cfg(debug_assertions)]
    crate::health::debug_assert_topk_level_clean(st, state, l);
    Ok(recovered)
}

/// The fused forward + LSE sweep: one loop over the timing levels runs
/// the evaluation level body ([`forward_level`]) and the differentiable
/// level body ([`crate::lse::lse_level`]) back to back for each level.
///
/// **Bit-identity.** Level `l` of the evaluation kernel reads only
/// earlier levels' Top-K queues; level `l` of the LSE kernel reads only
/// earlier levels' smooth arrivals. The two kernels share no output
/// arrays, so interleaving whole level bodies leaves every read seeing
/// exactly the state the unfused `forward` + `forward_lse_with`
/// sequence would have produced. What fusion buys is locality: the
/// level's fanin CSR rows, arc annotations, and parent indices are hot
/// in cache for the LSE body instead of being re-fetched a full pass
/// later.
///
/// Cancellation polls once per kernel per level, so incidents and
/// cancels carry the same `Kernel` attribution as the unfused passes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn forward_fused<M: StatModel>(
    st: &Static,
    state: &mut State,
    tau: f64,
    n_threads: usize,
    interrupt: Option<&Interrupt>,
    mut prof_fwd: Option<&mut LevelProfile>,
    mut prof_lse: Option<&mut LevelProfile>,
    model: &M,
) -> Result<Option<RuntimeIncident>, InstaError> {
    let restarted = interrupt.map(Interrupt::restarted);
    let interrupt = restarted.as_ref();

    // Pre-sweep state of both kernels, exactly as the unfused passes.
    state.topk_arrival.fill(f64::NEG_INFINITY);
    state.topk_sp.fill(NO_SP);
    seed_sources(st, state, 0..st.n, model);
    crate::lse::lse_reset_seed(st, state, model);

    let nt = resolve_threads(n_threads);
    let mut arenas = MergeArena::bank(nt);
    let mut recovered: Option<RuntimeIncident> = None;
    if let Some(p) = prof_fwd.as_deref_mut() {
        p.passes += 1;
    }
    if let Some(p) = prof_lse.as_deref_mut() {
        p.passes += 1;
    }
    let ann = |ai: usize, rf: usize| (st.arc_mean[ai][rf], st.arc_sigma[ai][rf]);
    for l in 1..st.num_levels() {
        if let Some(e) = interrupt.and_then(|i| i.check(Kernel::Forward, l)) {
            return Err(e);
        }
        if let Some(inc) =
            forward_level(st, state, nt, &mut arenas, l, prof_fwd.as_deref_mut(), model)?
        {
            recovered.get_or_insert(inc);
        }
        if let Some(e) = interrupt.and_then(|i| i.check(Kernel::ForwardLse, l)) {
            return Err(e);
        }
        if let Some(inc) =
            crate::lse::lse_level(st, state, tau, nt, l, &ann, prof_lse.as_deref_mut(), model)?
        {
            recovered.get_or_insert(inc);
        }
    }
    Ok(recovered)
}

/// The ordering corner of a candidate: the late corner for the setup
/// kernel, the *negated early* corner in min (hold) mode — the ordering
/// trick that lets the max-queue of Algorithm 2 keep the smallest early
/// arrivals (see [`crate::hold`]). Both corners are the backend's own
/// quantile measurements ([`StatModel::corner_late`] /
/// [`StatModel::corner_min`]).
#[inline(always)]
fn corner<M: StatModel, const MIN: bool>(model: &M, mean: f64, sigma: f64, n_sigma: f64) -> f64 {
    if MIN {
        model.corner_min(mean, sigma, n_sigma)
    } else {
        model.corner_late(mean, sigma, n_sigma)
    }
}

/// Computes one `(node, transition)` Top-K queue from its parents — the
/// shared inner body of Algorithm 1, in a gather-then-merge shape:
///
/// 1. **Gather.** Every candidate — parent entry plus arc distribution
///    (mean-additive, sigma in quadrature, Eqs. 1–3) — is computed into
///    the arena's SoA buffers by straight-line loops over the parent
///    queues' contiguous k-slices (the float-heavy part: one sqrt per
///    candidate, vectorization-friendly, no queue branching).
/// 2. **Merge.** Candidates are pushed through the unique-startpoint
///    queue update (Algorithm 2) in exactly the old j-major order —
///    slot-j candidates of every arc before slot j+1 — so the final
///    queue is bit-identical to the interleaved original; most pushes on
///    deep levels die in `update_topk_slices`' O(1) floor rejection.
///
/// Parent-queue and arc-annotation reads go through closures so the
/// batched scenario kernel ([`crate::batch`]) can overlay per-scenario
/// annotations and per-lane parent state while sharing the exact
/// float-operation order of the single-scenario kernel — the bit-identity
/// guarantee of `evaluate_batch` holds *by construction*, not by parallel
/// maintenance of two kernels. `parent(p, prf, j)` returns the parent's
/// j-th `(sp, mean, sigma)` entry; `arc(ai)` returns the arc's
/// `(mean, sigma)` for the destination transition being computed. `MIN`
/// selects the hold kernel's negated-early-corner ordering
/// ([`crate::hold`] shares this body instead of keeping its own merge).
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn merge_node_queue<M: StatModel, const MIN: bool>(
    st: &Static,
    fanin: std::ops::Range<usize>,
    rf: usize,
    k: usize,
    parent: &impl Fn(usize, usize, usize) -> (u32, f64, f64),
    arc: &impl Fn(usize) -> (f64, f64),
    arena: &mut MergeArena,
    qa: &mut [f64],
    qm: &mut [f64],
    qs: &mut [f64],
    qsp: &mut [u32],
    model: &M,
) {
    // Paper §III-D: input pins have a single parent in modern
    // designs, so no merge is needed — a vectorized transform of
    // the parent queue suffices (copy, add the arc distribution,
    // then restore corner order — which RSS sigma composition can
    // perturb — with one stable sort over the live prefix).
    if fanin.len() == 1 {
        let ai = fanin.start;
        let p = st.arc_parent[ai] as usize;
        let prf = if st.arc_neg[ai] { 1 - rf } else { rf };
        let (a_mean, s_arc) = arc(ai);
        let mut live = 0;
        for j in 0..k {
            let (sp, p_mean, s_par) = parent(p, prf, j);
            if sp == NO_SP {
                break;
            }
            let (mean, sigma) = model.arc_sum(p_mean, s_par, a_mean, s_arc);
            qm[j] = mean;
            qs[j] = sigma;
            qa[j] = corner::<M, MIN>(model, mean, sigma, st.n_sigma);
            qsp[j] = sp;
            live = j + 1;
        }
        restore_topk_desc(qa, qm, qs, qsp, live);
        return;
    }
    // Gather: all candidates, arc-major, reading each parent's k-slice
    // sequentially. Queues are dense from the front, so the per-arc live
    // count is the parent's occupancy.
    let n_arcs = fanin.len();
    arena.reserve(n_arcs, k);
    let mut max_live = 0usize;
    for (a_idx, ai) in fanin.clone().enumerate() {
        let p = st.arc_parent[ai] as usize;
        let prf = if st.arc_neg[ai] { 1 - rf } else { rf };
        let (a_mean, s_arc) = arc(ai);
        let o = a_idx * k;
        let mut live = 0usize;
        for j in 0..k {
            let (sp, p_mean, s_par) = parent(p, prf, j);
            if sp == NO_SP {
                break;
            }
            let (mean, sigma) = model.arc_sum(p_mean, s_par, a_mean, s_arc);
            arena.mean[o + j] = mean;
            arena.sigma[o + j] = sigma;
            arena.arrival[o + j] = corner::<M, MIN>(model, mean, sigma, st.n_sigma);
            arena.sp[o + j] = sp;
            live = j + 1;
        }
        arena.live[a_idx] = live as u32;
        max_live = max_live.max(live);
    }
    // Merge: paper Algorithm 1 — for each k, push every parent's k-th
    // unique-startpoint arrival, in the same j-major / arc-minor order
    // (and with the same skip/stop conditions) as the interleaved
    // original, so the queue evolution is bit-identical.
    for j in 0..max_live {
        for a_idx in 0..n_arcs {
            if (j as u32) < arena.live[a_idx] {
                let o = a_idx * k + j;
                update_topk_slices(
                    qa,
                    qm,
                    qs,
                    qsp,
                    Candidate {
                        arrival: arena.arrival[o],
                        mean: arena.mean[o],
                        sigma: arena.sigma[o],
                        sp: arena.sp[o],
                    },
                );
            }
        }
    }
}

/// Processes a chunk of one level's nodes — the per-thread body of
/// Algorithm 1. `MIN` selects hold's min-merge ordering; the hold pass
/// ([`crate::hold`]) runs this exact body rather than its own copy.
#[allow(clippy::too_many_arguments)]
pub(crate) fn level_chunk<M: StatModel, const MIN: bool>(
    st: &Static,
    k: usize,
    chunk_base: usize,
    mean_done: &[f64],
    sigma_done: &[f64],
    sp_done: &[u32],
    arr_cur: &mut [f64],
    mean_cur: &mut [f64],
    sigma_cur: &mut [f64],
    sp_cur: &mut [u32],
    arena: &mut MergeArena,
    model: &M,
) {
    let stride = 2 * k;
    let n_local = arr_cur.len() / stride;
    for li in 0..n_local {
        let v = chunk_base + li;
        let fanin = st.fanin_range(v);
        if fanin.is_empty() {
            continue; // level-0 stragglers with no driver stay empty
        }
        for rf in 0..2 {
            let off = li * stride + rf * k;
            let (qa, qm, qs, qsp) = (
                &mut arr_cur[off..off + k],
                &mut mean_cur[off..off + k],
                &mut sigma_cur[off..off + k],
                &mut sp_cur[off..off + k],
            );
            let parent = |p: usize, prf: usize, j: usize| {
                let pidx = (p * 2 + prf) * k + j;
                (sp_done[pidx], mean_done[pidx], sigma_done[pidx])
            };
            let arc = |ai: usize| (st.arc_mean[ai][rf], st.arc_sigma[ai][rf]);
            merge_node_queue::<M, MIN>(
                st,
                fanin.clone(),
                rf,
                k,
                &parent,
                &arc,
                arena,
                qa,
                qm,
                qs,
                qsp,
                model,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::{InstaConfig, InstaEngine};
    use insta_netlist::generator::{generate_design, GeneratorConfig};
    use insta_refsta::{RefSta, StaConfig};

    fn pair(seed: u64, k: usize) -> (RefSta, InstaEngine) {
        let d = generate_design(&GeneratorConfig::small("fwd", seed));
        let mut sta = RefSta::new(&d, StaConfig::default()).expect("build");
        sta.full_update(&d);
        let eng = InstaEngine::new(
            sta.export_insta_init(),
            InstaConfig {
                top_k: k,
                ..InstaConfig::default()
            },
        ).expect("valid snapshot");
        (sta, eng)
    }

    /// With K at least the number of startpoints, INSTA's endpoint slacks
    /// must match the golden engine bit-for-bit in structure (tiny float
    /// noise allowed): this is the paper's tool-accuracy claim in the
    /// regime where truncation cannot bite.
    #[test]
    fn matches_reference_exactly_when_k_covers_all_startpoints() {
        let (sta, mut eng) = pair(11, 32);
        let golden = sta.report().clone();
        let report = eng.propagate().clone();
        assert_eq!(report.slacks.len(), golden.endpoints.len());
        for (i, g) in golden.endpoints.iter().enumerate() {
            let diff = (report.slacks[i] - g.slack_ps).abs();
            assert!(
                diff < 1e-9,
                "endpoint {i}: insta {} vs golden {} (diff {diff})",
                report.slacks[i],
                g.slack_ps
            );
        }
        assert!((report.wns_ps - golden.wns_ps).abs() < 1e-9);
        assert!((report.tns_ps - golden.tns_ps).abs() < 1e-9);
    }

    /// Top-K=1 without CPPR credit is uniformly pessimistic relative to
    /// the exact analysis (Fig. 6's left-vs-right contrast).
    #[test]
    fn k1_without_cppr_is_pessimistic() {
        let d = generate_design(&GeneratorConfig::small("fwd", 13));
        let mut sta = RefSta::new(&d, StaConfig::default()).expect("build");
        sta.full_update(&d);
        let golden = sta.report().clone();
        let mut eng = InstaEngine::new(
            sta.export_insta_init(),
            InstaConfig {
                top_k: 1,
                cppr: false,
                ..InstaConfig::default()
            },
        ).expect("valid snapshot");
        let report = eng.propagate().clone();
        for (i, g) in golden.endpoints.iter().enumerate() {
            assert!(
                report.slacks[i] <= g.slack_ps + 1e-9,
                "no-CPPR slack must not exceed exact slack at ep {i}"
            );
        }
        assert!(report.tns_ps <= golden.tns_ps + 1e-9);
    }

    /// Increasing K monotonically tightens slacks toward the exact values.
    #[test]
    fn larger_k_improves_accuracy() {
        let d = generate_design(&GeneratorConfig::small("fwd", 17));
        let mut sta = RefSta::new(&d, StaConfig::default()).expect("build");
        sta.full_update(&d);
        let golden = sta.report().clone();
        let init = sta.export_insta_init();
        let mut errs = Vec::new();
        for k in [1usize, 2, 8, 32] {
            let mut eng = InstaEngine::new(
                init.clone(),
                InstaConfig {
                    top_k: k,
                    ..InstaConfig::default()
                },
            ).expect("valid snapshot");
            let r = eng.propagate().clone();
            let err: f64 = golden
                .endpoints
                .iter()
                .enumerate()
                .map(|(i, g)| (r.slacks[i] - g.slack_ps).abs())
                .sum();
            errs.push(err);
        }
        for w in errs.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9,
                "error must not grow with K: {errs:?}"
            );
        }
        assert!(errs[errs.len() - 1] < 1e-9, "K=32 must be exact here");
    }

    /// Across random designs, INSTA at covering K reproduces the
    /// golden endpoint slacks exactly (the paper's tool-accuracy claim
    /// as a property).
    #[test]
    fn random_designs_match_reference_exactly() {
        use insta_support::prop::{for_all, Config};
        use insta_support::prop_assert;
        for_all(
            Config::cases(6).seed(0xF0_54D1),
            |rng| rng.gen_range(0u64..500),
            |&seed| {
                let d = generate_design(&GeneratorConfig::small("prop_fwd", seed));
                let mut sta = RefSta::new(&d, StaConfig::default()).expect("build");
                let golden = sta.full_update(&d);
                let mut eng = InstaEngine::new(
                    sta.export_insta_init(),
                    InstaConfig {
                        top_k: 64,
                        ..InstaConfig::default()
                    },
                ).expect("valid snapshot");
                let report = eng.propagate().clone();
                for (i, g) in golden.endpoints.iter().enumerate() {
                    if g.slack_ps.is_finite() {
                        prop_assert!(
                            (report.slacks[i] - g.slack_ps).abs() < 1e-9,
                            "ep {i}: {} vs {}",
                            report.slacks[i],
                            g.slack_ps
                        );
                    }
                }
                Ok(())
            },
        );
    }

    /// The forward pass is idempotent: re-propagating without changes
    /// reproduces the same state.
    #[test]
    fn propagate_is_idempotent() {
        let (_sta, mut eng) = pair(19, 8);
        let r1 = eng.propagate().clone();
        let r2 = eng.propagate().clone();
        assert_eq!(r1.slacks, r2.slacks);
        assert_eq!(r1.wns_ps, r2.wns_ps);
    }
}
