//! Endpoint evaluation: slack per endpoint with SP-matched required times,
//! CPPR credit, exceptions, and the WNS/TNS design metrics.
//!
//! This is where the unique-startpoint Top-K pays off (paper §III-C): the
//! startpoint contributing the maximum arrival may not be the startpoint
//! with the worst slack once per-SP CPPR credit shifts required times, so
//! the evaluation scans all K entries per rise/fall and minimizes
//! `required(sp) − arrival(sp)`.

use crate::engine::{State, Static};
use crate::stat::{StatBackendKind, StatModel};
use crate::topk::NO_SP;
use insta_refsta::{EpId, SpId};

/// The INSTA endpoint report.
#[derive(Debug, Clone, PartialEq)]
pub struct InstaReport {
    /// Worst negative slack (ps).
    pub wns_ps: f64,
    /// Total negative slack (ps, ≤ 0).
    pub tns_ps: f64,
    /// Number of violating endpoints.
    pub n_violations: usize,
    /// Worst slack per endpoint (indexed by endpoint id); `INFINITY` for
    /// unreached endpoints.
    pub slacks: Vec<f64>,
    /// Worst corner arrival per endpoint.
    pub arrivals: Vec<f64>,
    /// Required time used for the worst slack per endpoint.
    pub requireds: Vec<f64>,
    /// Worst startpoint per endpoint ([`NO_SP`] when unreached).
    pub worst_sp: Vec<u32>,
    /// Worst transition per endpoint (0 = rise, 1 = fall).
    pub worst_rf: Vec<u8>,
}

impl InstaReport {
    /// Slack of an endpoint.
    pub fn slack(&self, ep: EpId) -> f64 {
        self.slacks[ep.index()]
    }

    /// The report under a mode mask: per-endpoint entries are kept
    /// verbatim (a disabled endpoint's slack stays inspectable), but
    /// WNS/TNS/violations are re-accumulated in endpoint order skipping
    /// disabled endpoints — the exact arithmetic the batched
    /// `lane_report` runs when the lane carries the mask, so masking
    /// after the fact is bit-identical to masking in the lane.
    pub fn masked(&self, mask: &crate::batch::ModeMask) -> InstaReport {
        let mut wns = f64::INFINITY;
        let mut tns = 0.0;
        let mut viol = 0usize;
        for (i, &s) in self.slacks.iter().enumerate() {
            if mask.is_disabled(i) {
                continue;
            }
            if s < 0.0 {
                tns += s;
                viol += 1;
            }
            if s < wns {
                wns = s;
            }
        }
        InstaReport {
            wns_ps: wns,
            tns_ps: tns,
            n_violations: viol,
            ..self.clone()
        }
    }
}

/// Evaluates endpoint slacks from the current Top-K state.
pub(crate) fn evaluate<M: StatModel>(
    st: &Static,
    state: &State,
    cppr: bool,
    model: &M,
) -> InstaReport {
    let k = state.k;
    let n_ep = st.endpoints.len();
    let mut slacks = vec![f64::INFINITY; n_ep];
    let mut arrivals = vec![f64::NEG_INFINITY; n_ep];
    let mut requireds = vec![f64::INFINITY; n_ep];
    let mut worst_sp = vec![NO_SP; n_ep];
    let mut worst_rf = vec![0u8; n_ep];
    let mut wns = f64::INFINITY;
    let mut tns = 0.0;
    let mut viol = 0usize;
    for (i, ep) in st.endpoints.iter().enumerate() {
        let v = ep.node as usize;
        let ep_id = EpId(ep.ep);
        for rf in 0..2usize {
            for j in 0..k {
                let idx = (v * 2 + rf) * k + j;
                let sp = state.topk_sp[idx];
                if sp == NO_SP {
                    break; // the queue is dense from the front
                }
                let sp_id = SpId(sp);
                if st.exceptions.is_false(sp_id, ep_id) {
                    continue;
                }
                let mut required = ep.required_base;
                let mcp = st.exceptions.multicycle_factor(sp_id, ep_id);
                if mcp > 1 {
                    required += (mcp - 1) as f64 * st.period_ps;
                }
                if cppr {
                    required += st.cppr_credit(st.sp_leaf[sp as usize], ep.leaf);
                }
                let arrival = state.topk_arrival[idx];
                let slack = model.slack(required, arrival);
                if slack < slacks[i] {
                    slacks[i] = slack;
                    arrivals[i] = arrival;
                    requireds[i] = required;
                    worst_sp[i] = sp;
                    worst_rf[i] = rf as u8;
                }
            }
        }
        if slacks[i] < 0.0 {
            tns += slacks[i];
            viol += 1;
        }
        if slacks[i] < wns {
            wns = slacks[i];
        }
    }
    InstaReport {
        wns_ps: wns,
        tns_ps: tns,
        n_violations: viol,
        slacks,
        arrivals,
        requireds,
        worst_sp,
        worst_rf,
    }
}

/// Monotonic runtime counters for observability: session lifecycle, drift
/// odometer, and incident-ring totals. Counters never roll back — a
/// rolled-back session still *happened* — so dashboards can difference
/// consecutive scrapes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EngineCounters {
    /// Committed-session count; bumped once per successful
    /// [`commit`](crate::session::TimingSession::commit).
    pub epoch: u64,
    /// Sessions opened via `begin_session`.
    pub sessions_begun: u64,
    /// Sessions committed.
    pub sessions_committed: u64,
    /// Sessions rolled back (explicitly, on poison, or on drop-while-open);
    /// excludes cancellations.
    pub sessions_rolled_back: u64,
    /// Sessions rolled back because a cancel token fired or a deadline
    /// expired.
    pub sessions_cancelled: u64,
    /// Incremental updates that took the degraded full-refresh path
    /// because the drift budget was exhausted.
    pub degraded_passes: u64,
    /// Total incremental updates (`reannotate` / `update_timing`).
    pub incremental_updates: u64,
    /// Re-annotation batches since the last
    /// [`reset_drift`](crate::engine::InstaEngine::reset_drift).
    pub drift_updates: u64,
    /// Touched-arc mass (Σ batch-size / graph-arcs) since the last drift
    /// reset.
    pub drift_mass: f64,
    /// Runtime incidents ever recorded (recovered and fatal).
    pub incidents_total: u64,
    /// Incidents evicted from the bounded ring
    /// ([`IncidentLog`](crate::error::IncidentLog)).
    pub incidents_dropped: u64,
    /// [`evaluate_batch`](crate::engine::InstaEngine::evaluate_batch)
    /// calls.
    pub batches: u64,
    /// Scenarios submitted across all batches.
    pub batch_scenarios: u64,
    /// Scenarios quarantined inside a batch (returned an error while
    /// sibling scenarios completed normally).
    pub batch_quarantined: u64,
    /// [`evaluate_mcmm`](crate::engine::InstaEngine::evaluate_mcmm)
    /// calls.
    pub mcmm_evaluations: u64,
    /// Batched lanes that carried a non-identity
    /// [`CornerTransform`](crate::batch::CornerTransform).
    pub mcmm_corner_lanes: u64,
    /// Scenarios answered from a sibling lane's propagation by the MCMM
    /// `(deltas, corner)` dedup — the saved sweeps of a C × M sweep.
    pub mcmm_deduped: u64,
    /// The statistical numerics backend the engine propagates with (see
    /// [`crate::stat`]). Fixed at construction; surfaced here so
    /// operators can tell which numerics a snapshot was computed under.
    pub stat_backend: StatBackendKind,
    /// Bin count of a discretized backend (`0` for closed-form Gaussian).
    pub stat_bins: u32,
}

impl crate::engine::InstaEngine {
    /// A snapshot of the engine's monotonic observability counters.
    pub fn counters(&self) -> EngineCounters {
        EngineCounters {
            epoch: self.epoch,
            sessions_begun: self.stats.begun,
            sessions_committed: self.stats.committed,
            sessions_rolled_back: self.stats.rolled_back,
            sessions_cancelled: self.stats.cancelled,
            degraded_passes: self.stats.degraded_passes,
            incremental_updates: self.stats.incremental_updates,
            drift_updates: self.drift.updates,
            drift_mass: self.drift.mass,
            incidents_total: self.incidents.total(),
            incidents_dropped: self.incidents.dropped(),
            batches: self.stats.batches,
            batch_scenarios: self.stats.batch_scenarios,
            batch_quarantined: self.stats.batch_quarantined,
            mcmm_evaluations: self.stats.mcmm_evaluations,
            mcmm_corner_lanes: self.stats.mcmm_corner_lanes,
            mcmm_deduped: self.stats.mcmm_deduped,
            stat_backend: self.backend.kind(),
            stat_bins: self.backend.bins(),
        }
    }

    /// The last evaluation report.
    ///
    /// # Panics
    ///
    /// Panics if [`propagate`](crate::engine::InstaEngine::propagate) has
    /// not been called yet.
    pub fn report(&self) -> &InstaReport {
        self.state
            .report
            .as_ref()
            .expect("call propagate() before report()")
    }

    /// The last report, if any.
    pub fn try_report(&self) -> Option<&InstaReport> {
        self.state.report.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::{InstaConfig, InstaEngine};
    use insta_netlist::generator::{generate_design, GeneratorConfig};
    use insta_refsta::{RefSta, StaConfig};

    #[test]
    fn report_metrics_are_internally_consistent() {
        let d = generate_design(&GeneratorConfig::small("met", 3));
        let mut sta = RefSta::new(&d, StaConfig::default()).expect("build");
        sta.full_update(&d);
        let mut eng = InstaEngine::new(sta.export_insta_init(), InstaConfig::default()).expect("valid snapshot");
        let r = eng.propagate().clone();
        let tns: f64 = r.slacks.iter().map(|s| s.min(0.0)).sum();
        assert!((tns - r.tns_ps).abs() < 1e-9);
        let wns = r.slacks.iter().copied().fold(f64::INFINITY, f64::min);
        assert_eq!(wns, r.wns_ps);
        assert_eq!(
            r.n_violations,
            r.slacks.iter().filter(|&&s| s < 0.0).count()
        );
        for (i, &s) in r.slacks.iter().enumerate() {
            if s.is_finite() {
                assert!((r.requireds[i] - r.arrivals[i] - s).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn exceptions_flow_through_the_engine() {
        let d = generate_design(&GeneratorConfig::small("met", 5));
        let mut sta = RefSta::new(&d, StaConfig::default()).expect("build");
        let golden = sta.full_update(&d);
        let worst = golden
            .endpoints
            .iter()
            .min_by(|a, b| a.slack_ps.total_cmp(&b.slack_ps))
            .copied()
            .expect("endpoints");
        let sp = worst.worst_sp.expect("worst sp");
        sta.exceptions_mut().add_false_path(sp, worst.ep);
        sta.full_update(&d);
        let mut eng = InstaEngine::new(sta.export_insta_init(), InstaConfig::default()).expect("valid snapshot");
        let r = eng.propagate().clone();
        // INSTA must agree with the golden engine under the exception.
        let g = sta.report().endpoints[worst.ep.index()];
        assert!((r.slacks[worst.ep.index()] - g.slack_ps).abs() < 1e-9);
        assert_ne!(r.worst_sp[worst.ep.index()], sp.0);
    }

    #[test]
    fn report_panics_before_propagate() {
        let d = generate_design(&GeneratorConfig::small("met", 7));
        let mut sta = RefSta::new(&d, StaConfig::default()).expect("build");
        sta.full_update(&d);
        let eng = InstaEngine::new(sta.export_insta_init(), InstaConfig::default()).expect("valid snapshot");
        assert!(eng.try_report().is_none());
        let result = std::panic::catch_unwind(|| {
            let _ = eng.report();
        });
        assert!(result.is_err());
    }
}
