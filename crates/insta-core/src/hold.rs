//! Hold (early/min) propagation in the INSTA engine — engine parity with
//! the reference's hold analysis, beyond the paper's setup-only scope.
//!
//! The min-merge reuses the *same* unique-startpoint Top-K kernel by an
//! ordering trick: candidates are pushed with **negated early corners**
//! (`-(mean − N_σ·σ)`), so the max-queue of Algorithm 2 keeps the
//! *smallest* early arrivals with startpoint uniqueness intact. Endpoint
//! hold checks then mirror the reference: the earliest arrival must not
//! beat the late capture edge plus the hold margin, with CPPR credit
//! *reducing* the requirement.

use crate::engine::{InstaEngine, State, Static};
use crate::forward::level_chunk;
use crate::metrics::InstaReport;
use crate::parallel::MergeArena;
use crate::stat::{with_model, StatModel};
use crate::topk::NO_SP;
use insta_refsta::export::NO_LEAF;
use insta_refsta::{EpId, SpId};

/// Hold-side attributes the engine needs beyond the setup snapshot:
/// per-startpoint early launch arrivals and per-endpoint hold
/// requirements. Produced by [`hold_attributes`] from a reference engine.
#[derive(Debug, Clone, PartialEq)]
pub struct HoldAttributes {
    /// Early launch mean per startpoint per transition (ps).
    pub source_mean: Vec<[f64; 2]>,
    /// Launch sigma per startpoint per transition (ps).
    pub source_sigma: Vec<[f64; 2]>,
    /// Hold requirement per endpoint *before* CPPR credit:
    /// `capture_late + hold_margin` (ps); `NEG_INFINITY` for
    /// hold-unconstrained endpoints (primary outputs).
    pub required_base: Vec<f64>,
}

/// Extracts hold attributes from a timed reference engine (the hold-side
/// counterpart of the setup export).
pub fn hold_attributes(
    design: &insta_netlist::Design,
    golden: &insta_refsta::RefSta,
) -> HoldAttributes {
    use insta_liberty::{ArcKind, Transition};
    let cfg = golden.config();
    let mut source_mean = Vec::with_capacity(golden.sp_infos().len());
    let mut source_sigma = Vec::with_capacity(golden.sp_infos().len());
    for sp in golden.sp_infos() {
        match sp.flop.and_then(|f| golden.clock().flop(f).copied()) {
            Some(fc) => {
                let lc = design.lib_cell_of(sp.flop.expect("clocked flop"));
                let launch = lc
                    .arcs()
                    .iter()
                    .find(|a| a.kind == ArcKind::Launch)
                    .expect("flop has a launch arc");
                let load = design.driver_load_ff(sp.pin);
                let mut mean = [0.0; 2];
                let mut sigma = [0.0; 2];
                for tr in Transition::BOTH {
                    let d = launch.delay(tr).lookup(fc.slew, load);
                    let s = launch.sigma_coeff * d;
                    mean[tr.index()] = fc.mean * cfg.derate_early + d;
                    sigma[tr.index()] = (fc.sigma * fc.sigma + s * s).sqrt();
                }
                source_mean.push(mean);
                source_sigma.push(sigma);
            }
            None => {
                source_mean.push([cfg.input_delay_ps; 2]);
                source_sigma.push([0.0; 2]);
            }
        }
    }
    let required_base = golden
        .ep_infos()
        .iter()
        .map(|ep| match ep.capture.and_then(|f| golden.clock().flop(f).copied()) {
            Some(fc) => {
                let lc = design.lib_cell_of(ep.capture.expect("capture flop"));
                let hold_margin = lc
                    .arcs()
                    .iter()
                    .find(|a| a.kind == ArcKind::Hold)
                    .map(|a| a.delay(Transition::Rise).lookup(fc.slew, 0.0))
                    .unwrap_or(0.0);
                fc.mean * cfg.derate_late + cfg.n_sigma * fc.sigma + hold_margin
            }
            None => f64::NEG_INFINITY,
        })
        .collect();
    HoldAttributes {
        source_mean,
        source_sigma,
        required_base,
    }
}

impl InstaEngine {
    /// Runs the hold (min) forward pass and evaluates hold checks.
    ///
    /// Reuses the setup snapshot's arc delays and CPPR arrays; the
    /// hold-specific launch arrivals and requirements come from `attrs`.
    /// Returns a report in the same shape as the setup report (slacks per
    /// endpoint, WNS/TNS over hold violations).
    pub fn propagate_hold(&mut self, attrs: &HoldAttributes) -> InstaReport {
        assert_eq!(
            attrs.source_mean.len(),
            self.st.sources.len(),
            "hold attributes must cover every startpoint"
        );
        assert_eq!(
            attrs.required_base.len(),
            self.st.endpoints.len(),
            "hold attributes must cover every endpoint"
        );
        // The min pass clobbers the setup Top-K arrays.
        self.topk_writes += 1;
        self.topk_synced = false;
        with_model!(&self.backend, m => {
            forward_min(&self.st, &mut self.state, attrs, m);
            evaluate_hold(&self.st, &self.state, attrs, self.cfg.cppr, m)
        })
    }
}

/// Min-mode forward pass: the *same* per-level kernel as setup
/// ([`level_chunk`] with `MIN = true`), which computes candidates as
/// negated early corners so Algorithm 2's max-queue keeps the smallest
/// early arrivals. Hold no longer maintains its own copy of the merge —
/// the kernel-equivalence suite covers both modes through one body.
fn forward_min<M: StatModel>(st: &Static, state: &mut State, attrs: &HoldAttributes, model: &M) {
    let k = state.k;
    state.topk_arrival.fill(f64::NEG_INFINITY);
    state.topk_sp.fill(NO_SP);
    for (sp_idx, s) in st.sources.iter().enumerate() {
        let v = s.node as usize;
        for rf in 0..2 {
            let idx = (v * 2 + rf) * k;
            let mean = attrs.source_mean[sp_idx][rf];
            let sigma = attrs.source_sigma[sp_idx][rf];
            state.topk_mean[idx] = mean;
            state.topk_sigma[idx] = sigma;
            state.topk_arrival[idx] = model.corner_min(mean, sigma, st.n_sigma);
            state.topk_sp[idx] = s.sp;
        }
    }
    let mut arena = MergeArena::default();
    for l in 1..st.num_levels() {
        let r = st.level_range(l);
        if r.is_empty() {
            continue;
        }
        let stride = 2 * k;
        let split = r.start * stride;
        let (arr_done, arr_cur) = state.topk_arrival.split_at_mut(split);
        let (mean_done, mean_cur) = state.topk_mean.split_at_mut(split);
        let (sigma_done, sigma_cur) = state.topk_sigma.split_at_mut(split);
        let (sp_done, sp_cur) = state.topk_sp.split_at_mut(split);
        let _ = arr_done;
        let len = r.len();
        level_chunk::<M, true>(
            st,
            k,
            r.start,
            mean_done,
            sigma_done,
            sp_done,
            &mut arr_cur[..len * stride],
            &mut mean_cur[..len * stride],
            &mut sigma_cur[..len * stride],
            &mut sp_cur[..len * stride],
            &mut arena,
            model,
        );
    }
}

/// Hold checks from the min-mode state.
pub(crate) fn evaluate_hold<M: StatModel>(
    st: &Static,
    state: &State,
    attrs: &HoldAttributes,
    cppr: bool,
    model: &M,
) -> InstaReport {
    let k = state.k;
    let n_ep = st.endpoints.len();
    let mut slacks = vec![f64::INFINITY; n_ep];
    let mut arrivals = vec![f64::INFINITY; n_ep];
    let mut requireds = vec![f64::NEG_INFINITY; n_ep];
    let mut worst_sp = vec![NO_SP; n_ep];
    let mut worst_rf = vec![0u8; n_ep];
    let mut wns = f64::INFINITY;
    let mut tns = 0.0;
    let mut viol = 0usize;
    for (i, ep) in st.endpoints.iter().enumerate() {
        let base = attrs.required_base[i];
        if base == f64::NEG_INFINITY {
            continue; // hold-unconstrained (primary output)
        }
        let v = ep.node as usize;
        for rf in 0..2usize {
            for j in 0..k {
                let idx = (v * 2 + rf) * k + j;
                let sp = state.topk_sp[idx];
                if sp == NO_SP {
                    break;
                }
                if st
                    .exceptions
                    .is_false(SpId(sp), EpId(ep.ep))
                {
                    continue;
                }
                let mut required = base;
                if cppr && st.sp_leaf[sp as usize] != NO_LEAF && ep.leaf != NO_LEAF {
                    required -= st.cppr_credit(st.sp_leaf[sp as usize], ep.leaf);
                }
                let early = -state.topk_arrival[idx];
                let slack = model.hold_slack(early, required);
                if slack < slacks[i] {
                    slacks[i] = slack;
                    arrivals[i] = early;
                    requireds[i] = required;
                    worst_sp[i] = sp;
                    worst_rf[i] = rf as u8;
                }
            }
        }
        if slacks[i] < 0.0 {
            tns += slacks[i];
            viol += 1;
        }
        if slacks[i] < wns {
            wns = slacks[i];
        }
    }
    InstaReport {
        wns_ps: wns,
        tns_ps: tns,
        n_violations: viol,
        slacks,
        arrivals,
        requireds,
        worst_sp,
        worst_rf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{InstaConfig, InstaEngine};
    use insta_netlist::generator::{generate_design, GeneratorConfig};
    use insta_refsta::{RefSta, StaConfig};

    fn setup(seed: u64) -> (insta_netlist::Design, RefSta, InstaEngine, HoldAttributes) {
        let d = generate_design(&GeneratorConfig::small("ihold", seed));
        let mut sta = RefSta::new(&d, StaConfig::default()).expect("build");
        sta.full_update(&d);
        let attrs = hold_attributes(&d, &sta);
        let eng = InstaEngine::new(sta.export_insta_init(), InstaConfig::default()).expect("valid snapshot");
        (d, sta, eng, attrs)
    }

    /// INSTA's hold slacks match the reference hold analysis exactly at
    /// covering K.
    #[test]
    fn hold_matches_reference_exactly() {
        let (d, mut sta, mut eng, attrs) = setup(3);
        let golden = sta.hold_update(&d);
        let report = eng.propagate_hold(&attrs);
        assert_eq!(report.slacks.len(), golden.endpoints.len());
        for (i, g) in golden.endpoints.iter().enumerate() {
            if g.slack_ps.is_finite() {
                assert!(
                    (report.slacks[i] - g.slack_ps).abs() < 1e-9,
                    "ep {i}: insta {} vs golden {}",
                    report.slacks[i],
                    g.slack_ps
                );
            } else {
                assert!(!report.slacks[i].is_finite());
            }
        }
        assert!((report.wns_ps - golden.wns_ps).abs() < 1e-9);
        assert!((report.tns_ps - golden.tns_ps).abs() < 1e-9);
    }

    /// The min-path (earliest) arrivals behind the hold slacks match the
    /// reference hold analysis on fixed-seed designs — the hold check is
    /// built on the right arrivals, not just the right differences.
    #[test]
    fn hold_min_arrivals_match_reference() {
        for seed in [11, 13] {
            let (d, mut sta, mut eng, attrs) = setup(seed);
            let golden = sta.hold_update(&d);
            let report = eng.propagate_hold(&attrs);
            let mut checked = 0usize;
            for (i, g) in golden.endpoints.iter().enumerate() {
                if g.slack_ps.is_finite() {
                    checked += 1;
                    assert!(
                        (report.arrivals[i] - g.arrival_ps).abs() < 1e-9,
                        "seed {seed} ep {i}: min arrival {} vs golden {}",
                        report.arrivals[i],
                        g.arrival_ps
                    );
                }
            }
            assert!(checked > 0, "seed {seed}: no constrained hold endpoint");
        }
    }

    /// A batched setup evaluation interleaved with hold passes stays
    /// bit-correct: `propagate_hold` repurposes the Top-K buffers (and
    /// desyncs them), so `evaluate_batch` must re-sync its shared base
    /// before sweeping — scenario results before and after a hold pass
    /// are bit-identical, and the hold report is unaffected by a batch.
    #[test]
    fn batched_evaluation_is_bit_stable_across_hold_passes() {
        use crate::batch::DeltaSet;
        use insta_refsta::eco::ArcDelta;

        let (_d, sta, mut eng, attrs) = setup(9);
        eng.propagate();
        let delays = sta.delays();
        let arc = (delays.mean.len() / 3) as u32;
        let mean = delays.mean[arc as usize];
        let scenarios = vec![
            DeltaSet::default(),
            DeltaSet::from(vec![ArcDelta {
                arc,
                mean: [mean[0] + 25.0, mean[1] + 25.0],
                sigma: delays.sigma[arc as usize],
            }]),
        ];
        let bits = |reports: &[crate::batch::ScenarioReport]| -> Vec<u64> {
            reports
                .iter()
                .flat_map(|r| {
                    r.outcome
                        .as_ref()
                        .expect("clean scenario")
                        .slacks
                        .iter()
                        .map(|s| s.to_bits())
                        .collect::<Vec<_>>()
                })
                .collect()
        };
        let before = bits(&eng.evaluate_batch(&scenarios));
        let hold_a = eng.propagate_hold(&attrs);
        // The hold pass overwrote the shared base; the batch re-syncs.
        let after = bits(&eng.evaluate_batch(&scenarios));
        assert_eq!(before, after, "hold pass leaked into batched setup results");
        // And the batch leaves hold analysis undisturbed in turn.
        let hold_b = eng.propagate_hold(&attrs);
        assert_eq!(hold_a.slacks, hold_b.slacks);
    }

    /// Setup state is restored by re-propagating after a hold pass (the
    /// two modes share buffers by design).
    #[test]
    fn setup_propagation_recovers_after_hold() {
        let (_d, sta, mut eng, attrs) = setup(5);
        let setup_before = eng.propagate().clone();
        eng.propagate_hold(&attrs);
        let setup_after = eng.propagate().clone();
        assert_eq!(setup_before.slacks, setup_after.slacks);
        let _ = sta;
    }

    /// Hold and setup disagree on what is critical: the hold-worst
    /// endpoint is generally not the setup-worst endpoint.
    #[test]
    fn hold_is_a_distinct_analysis() {
        let (_d, _sta, mut eng, attrs) = setup(7);
        let setup = eng.propagate().clone();
        let hold = eng.propagate_hold(&attrs);
        // Both must be populated over the same endpoints.
        assert_eq!(setup.slacks.len(), hold.slacks.len());
        // At least one endpoint orders differently (overwhelmingly likely
        // on any non-trivial design; this is a structure check, not a
        // tautology).
        let differs = setup
            .slacks
            .iter()
            .zip(&hold.slacks)
            .any(|(a, b)| a.is_finite() && b.is_finite() && (a - b).abs() > 1.0);
        assert!(differs, "hold slacks must not mirror setup slacks");
    }
}
