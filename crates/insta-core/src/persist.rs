//! Canonical binary codec for durable engine state: committed writer ops,
//! the engine's re-annotatable delay state, and [`TimingSnapshot`] images.
//!
//! This is the serialization layer under `insta-serve`'s write-ahead log
//! and checkpoint files (ROADMAP item 1's durability work, and the
//! canonical epoch artifact ROADMAP item 4's interface-model shipping
//! needs). Design rules:
//!
//! * **Bit-exact floats.** Every `f64` crosses the boundary as
//!   `to_bits`/`from_bits` little-endian — the recovery contract is raw
//!   slack-bit identity to a crash-free twin, so the codec must never
//!   round-trip through text.
//! * **Length-guarded decode.** Every array length is validated against
//!   the bytes actually remaining *before* allocation, so a corrupted
//!   length field yields a typed [`PersistError`], not an OOM or panic.
//!   (Framing-level damage is caught earlier by the WAL's per-record
//!   CRC32; these guards defend the decode itself.)
//! * **No self-describing overhead.** Fields are written in a fixed
//!   order; the container (WAL / checkpoint file) carries the format
//!   version and decides which decoder to call.
//!
//! The codec lives in `insta-core` because it needs `pub(crate)` access
//! to [`TimingSnapshot`] internals and the engine's annotation arrays;
//! the file formats (magic, version, CRC framing, fsync discipline) live
//! in `insta-serve::wal`.

use crate::engine::InstaEngine;
use crate::metrics::{EngineCounters, InstaReport};
use crate::stat::StatBackendKind;
use crate::snapshot::TimingSnapshot;
use crate::trace::{PerfReport, PerfRow};
use insta_refsta::eco::ArcDelta;
use std::fmt;

/// A typed decode failure. Encoding is infallible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The buffer ended before `what` could be read.
    Truncated {
        /// Which field ran out of bytes.
        what: &'static str,
    },
    /// A declared length is impossible for the bytes remaining.
    BadLength {
        /// Which array declared it.
        what: &'static str,
        /// The declared element count.
        declared: u64,
        /// Bytes remaining in the buffer.
        remaining: usize,
    },
    /// An enum tag byte has no known meaning.
    BadTag {
        /// Which enum was being decoded.
        what: &'static str,
        /// The unrecognized tag.
        tag: u8,
    },
    /// Decoded state does not fit the engine it is being restored into
    /// (a stale checkpoint from a different design or configuration).
    Mismatch {
        /// Which array disagreed.
        what: &'static str,
        /// The engine's expected element count.
        expected: usize,
        /// The decoded element count.
        got: usize,
    },
    /// Trailing bytes after a complete decode — the payload is not what
    /// its framing claimed.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Truncated { what } => {
                write!(f, "persist decode truncated while reading {what}")
            }
            PersistError::BadLength {
                what,
                declared,
                remaining,
            } => write!(
                f,
                "persist decode: {what} declares {declared} elements but only {remaining} bytes remain"
            ),
            PersistError::BadTag { what, tag } => {
                write!(f, "persist decode: unknown {what} tag {tag:#04x}")
            }
            PersistError::Mismatch {
                what,
                expected,
                got,
            } => write!(
                f,
                "durable state mismatch: {what} has {got} elements, engine expects {expected} \
                 (stale checkpoint or wrong design)"
            ),
            PersistError::TrailingBytes { extra } => {
                write!(f, "persist decode: {extra} trailing bytes after payload")
            }
        }
    }
}

impl std::error::Error for PersistError {}

/// A little-endian byte-stream encoder (append-only, infallible).
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a raw byte slice.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its raw IEEE-754 bits (bit-exact, NaN-safe).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
}

/// A little-endian byte-stream decoder with typed bounds errors.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails with [`PersistError::TrailingBytes`] unless fully consumed.
    pub fn finish(&self) -> Result<(), PersistError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(PersistError::TrailingBytes {
                extra: self.remaining(),
            })
        }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Truncated { what });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, PersistError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Reads an `f64` from its raw bits.
    pub fn f64(&mut self, what: &'static str) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Reads an element count and validates it against the bytes left
    /// (`elem_bytes` per element) before the caller allocates.
    pub fn len(&mut self, elem_bytes: usize, what: &'static str) -> Result<usize, PersistError> {
        let declared = self.u64(what)?;
        let fits = (declared as u128) * (elem_bytes as u128) <= self.remaining() as u128;
        if !fits {
            return Err(PersistError::BadLength {
                what,
                declared,
                remaining: self.remaining(),
            });
        }
        Ok(declared as usize)
    }
}

fn enc_f64s(e: &mut Enc, v: &[f64]) {
    e.u64(v.len() as u64);
    for &x in v {
        e.f64(x);
    }
}

fn dec_f64s(d: &mut Dec<'_>, what: &'static str) -> Result<Vec<f64>, PersistError> {
    let n = d.len(8, what)?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(d.f64(what)?);
    }
    Ok(v)
}

fn enc_u32s(e: &mut Enc, v: &[u32]) {
    e.u64(v.len() as u64);
    for &x in v {
        e.u32(x);
    }
}

fn dec_u32s(d: &mut Dec<'_>, what: &'static str) -> Result<Vec<u32>, PersistError> {
    let n = d.len(4, what)?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(d.u32(what)?);
    }
    Ok(v)
}

fn enc_pairs(e: &mut Enc, v: &[[f64; 2]]) {
    e.u64(v.len() as u64);
    for p in v {
        e.f64(p[0]);
        e.f64(p[1]);
    }
}

fn dec_pairs(d: &mut Dec<'_>, what: &'static str) -> Result<Vec<[f64; 2]>, PersistError> {
    let n = d.len(16, what)?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push([d.f64(what)?, d.f64(what)?]);
    }
    Ok(v)
}

/// One committed writer operation, as logged to the WAL.
///
/// Replaying the logged sequence through real engine sessions (in order,
/// from the same initial state) reproduces the committed timeline
/// bit-exactly: deltas are absolute overwrites and propagation is
/// deterministic, so the ops are their own canonical representation — no
/// result data is logged, only intent.
#[derive(Debug, Clone, PartialEq)]
pub enum WriterOp {
    /// A full re-propagation commit (the serve layer's `propagate` op).
    Propagate,
    /// An incremental update commit with its validated delta batch.
    Update(Vec<ArcDelta>),
}

const OP_PROPAGATE: u8 = 1;
const OP_UPDATE: u8 = 2;

impl WriterOp {
    /// Encodes the op as a self-contained payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            WriterOp::Propagate => e.u8(OP_PROPAGATE),
            WriterOp::Update(deltas) => {
                e.u8(OP_UPDATE);
                e.u64(deltas.len() as u64);
                for d in deltas {
                    e.u32(d.arc);
                    e.f64(d.mean[0]);
                    e.f64(d.mean[1]);
                    e.f64(d.sigma[0]);
                    e.f64(d.sigma[1]);
                }
            }
        }
        e.into_bytes()
    }

    /// Decodes a payload produced by [`encode`](Self::encode).
    pub fn decode(bytes: &[u8]) -> Result<Self, PersistError> {
        let mut d = Dec::new(bytes);
        let op = match d.u8("writer op tag")? {
            OP_PROPAGATE => WriterOp::Propagate,
            OP_UPDATE => {
                let n = d.len(36, "writer op deltas")?;
                let mut deltas = Vec::with_capacity(n);
                for _ in 0..n {
                    deltas.push(ArcDelta {
                        arc: d.u32("delta arc")?,
                        mean: [d.f64("delta mean")?, d.f64("delta mean")?],
                        sigma: [d.f64("delta sigma")?, d.f64("delta sigma")?],
                    });
                }
                WriterOp::Update(deltas)
            }
            tag => return Err(PersistError::BadTag {
                what: "writer op",
                tag,
            }),
        };
        d.finish()?;
        Ok(op)
    }
}

fn enc_counters(e: &mut Enc, c: &EngineCounters) {
    e.u64(c.epoch);
    e.u64(c.sessions_begun);
    e.u64(c.sessions_committed);
    e.u64(c.sessions_rolled_back);
    e.u64(c.sessions_cancelled);
    e.u64(c.degraded_passes);
    e.u64(c.incremental_updates);
    e.u64(c.drift_updates);
    e.f64(c.drift_mass);
    e.u64(c.incidents_total);
    e.u64(c.incidents_dropped);
    e.u64(c.batches);
    e.u64(c.batch_scenarios);
    e.u64(c.batch_quarantined);
    e.u8(match c.stat_backend {
        StatBackendKind::GaussianPocv => 0,
        StatBackendKind::FixedBinHistogram => 1,
    });
    e.u32(c.stat_bins);
    // Format v2: MCMM counters (appended so the field order above stays
    // byte-stable within a format generation).
    e.u64(c.mcmm_evaluations);
    e.u64(c.mcmm_corner_lanes);
    e.u64(c.mcmm_deduped);
}

fn dec_counters(d: &mut Dec<'_>) -> Result<EngineCounters, PersistError> {
    Ok(EngineCounters {
        epoch: d.u64("counters")?,
        sessions_begun: d.u64("counters")?,
        sessions_committed: d.u64("counters")?,
        sessions_rolled_back: d.u64("counters")?,
        sessions_cancelled: d.u64("counters")?,
        degraded_passes: d.u64("counters")?,
        incremental_updates: d.u64("counters")?,
        drift_updates: d.u64("counters")?,
        drift_mass: d.f64("counters")?,
        incidents_total: d.u64("counters")?,
        incidents_dropped: d.u64("counters")?,
        batches: d.u64("counters")?,
        batch_scenarios: d.u64("counters")?,
        batch_quarantined: d.u64("counters")?,
        stat_backend: match d.u8("counters")? {
            0 => StatBackendKind::GaussianPocv,
            1 => StatBackendKind::FixedBinHistogram,
            tag => {
                return Err(PersistError::BadTag {
                    what: "stat backend",
                    tag,
                })
            }
        },
        stat_bins: d.u32("counters")?,
        mcmm_evaluations: d.u64("counters")?,
        mcmm_corner_lanes: d.u64("counters")?,
        mcmm_deduped: d.u64("counters")?,
    })
}

fn enc_report(e: &mut Enc, r: &InstaReport) {
    e.f64(r.wns_ps);
    e.f64(r.tns_ps);
    e.u64(r.n_violations as u64);
    enc_f64s(e, &r.slacks);
    enc_f64s(e, &r.arrivals);
    enc_f64s(e, &r.requireds);
    enc_u32s(e, &r.worst_sp);
    e.u64(r.worst_rf.len() as u64);
    e.bytes(&r.worst_rf);
}

fn dec_report(d: &mut Dec<'_>) -> Result<InstaReport, PersistError> {
    let wns_ps = d.f64("report wns")?;
    let tns_ps = d.f64("report tns")?;
    let n_violations = d.u64("report violations")? as usize;
    let slacks = dec_f64s(d, "report slacks")?;
    let arrivals = dec_f64s(d, "report arrivals")?;
    let requireds = dec_f64s(d, "report requireds")?;
    let worst_sp = dec_u32s(d, "report worst_sp")?;
    let n = d.len(1, "report worst_rf")?;
    let worst_rf = d.take(n, "report worst_rf")?.to_vec();
    Ok(InstaReport {
        wns_ps,
        tns_ps,
        n_violations,
        slacks,
        arrivals,
        requireds,
        worst_sp,
        worst_rf,
    })
}

fn enc_perf(e: &mut Enc, p: &PerfReport) {
    e.u64(p.rows.len() as u64);
    for r in &p.rows {
        e.u64(r.level as u64);
        e.u64(r.nodes);
        e.u64(r.forward_ns);
        e.u64(r.lse_ns);
        e.u64(r.backward_ns);
    }
    e.u64(p.forward_passes);
    e.u64(p.lse_passes);
    e.u64(p.backward_passes);
    e.u8(match p.stat_backend {
        StatBackendKind::GaussianPocv => 0,
        StatBackendKind::FixedBinHistogram => 1,
    });
    e.u32(p.stat_bins);
}

fn dec_perf(d: &mut Dec<'_>) -> Result<PerfReport, PersistError> {
    let n = d.len(40, "perf rows")?;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        rows.push(PerfRow {
            level: d.u64("perf row")? as usize,
            nodes: d.u64("perf row")?,
            forward_ns: d.u64("perf row")?,
            lse_ns: d.u64("perf row")?,
            backward_ns: d.u64("perf row")?,
        });
    }
    Ok(PerfReport {
        rows,
        forward_passes: d.u64("perf passes")?,
        lse_passes: d.u64("perf passes")?,
        backward_passes: d.u64("perf passes")?,
        stat_backend: match d.u8("perf stat backend")? {
            0 => StatBackendKind::GaussianPocv,
            1 => StatBackendKind::FixedBinHistogram,
            tag => {
                return Err(PersistError::BadTag {
                    what: "stat backend",
                    tag,
                })
            }
        },
        stat_bins: d.u32("perf stat bins")?,
    })
}

/// Encodes a [`TimingSnapshot`] as a self-contained payload.
///
/// The `orig_index` map is not written — it is a pure function of
/// `node_orig` and is rebuilt on decode.
pub fn encode_snapshot(s: &TimingSnapshot) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(s.epoch);
    match &s.report {
        None => e.u8(0),
        Some(r) => {
            e.u8(1);
            enc_report(&mut e, r);
        }
    }
    enc_counters(&mut e, &s.counters);
    enc_f64s(&mut e, &s.arrival0);
    enc_u32s(&mut e, &s.sp0);
    enc_u32s(&mut e, &s.node_orig);
    enc_perf(&mut e, &s.perf);
    e.into_bytes()
}

/// Decodes a payload produced by [`encode_snapshot`], rebuilding the
/// original-id lookup index.
pub fn decode_snapshot(bytes: &[u8]) -> Result<TimingSnapshot, PersistError> {
    let mut d = Dec::new(bytes);
    let epoch = d.u64("snapshot epoch")?;
    let report = match d.u8("snapshot report flag")? {
        0 => None,
        1 => Some(dec_report(&mut d)?),
        tag => {
            return Err(PersistError::BadTag {
                what: "snapshot report flag",
                tag,
            })
        }
    };
    let counters = dec_counters(&mut d)?;
    let arrival0 = dec_f64s(&mut d, "snapshot arrival0")?;
    let sp0 = dec_u32s(&mut d, "snapshot sp0")?;
    let node_orig = dec_u32s(&mut d, "snapshot node_orig")?;
    let perf = dec_perf(&mut d)?;
    d.finish()?;
    let orig_index = node_orig
        .iter()
        .enumerate()
        .map(|(i, &o)| (o, i as u32))
        .collect();
    Ok(TimingSnapshot {
        epoch,
        report,
        counters,
        arrival0,
        sp0,
        node_orig,
        orig_index,
        perf,
    })
}

/// The minimal mutable engine state a checkpoint must carry to make the
/// committed timeline reproducible: the re-annotatable delay arrays plus
/// the epoch and drift odometer.
///
/// Everything else (Top-K queues, LSE buffers, reports) is a
/// deterministic function of these via [`InstaEngine::propagate`], so
/// restore is `restore()` + one propagation — the same recomputation
/// `update_timing` performs on every commit, guaranteeing the restored
/// engine continues the timeline bit-exactly. The drift odometer must be
/// carried because it decides *when* the degraded fused path runs, which
/// changes which code produced the committed bits.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineDurableState {
    /// The committed epoch.
    pub epoch: u64,
    /// Drift odometer: incremental updates since the last reset.
    pub drift_updates: u64,
    /// Drift odometer: accumulated touched-arc mass.
    pub drift_mass: f64,
    /// Per-expansion-arc mean delays (renumbered engine order).
    pub arc_mean: Vec<[f64; 2]>,
    /// Per-expansion-arc sigmas (renumbered engine order).
    pub arc_sigma: Vec<[f64; 2]>,
}

impl EngineDurableState {
    /// Captures the durable state of `engine` (call after a commit).
    pub fn capture(engine: &InstaEngine) -> Self {
        EngineDurableState {
            epoch: engine.epoch,
            drift_updates: engine.drift.updates,
            drift_mass: engine.drift.mass,
            arc_mean: engine.st.arc_mean.clone(),
            arc_sigma: engine.st.arc_sigma.clone(),
        }
    }

    /// Restores this state into `engine`, which must have been built from
    /// the same design/config as the captured one.
    ///
    /// The engine's derived arrays are left stale; the caller must run
    /// [`InstaEngine::propagate`] before serving reads. Counters other
    /// than the epoch and drift odometer are *not* restored — they count
    /// this process's work, not the timeline's (see DESIGN.md).
    ///
    /// # Errors
    ///
    /// [`PersistError::Mismatch`] when the annotation arrays do not match
    /// the engine's expansion-arc count — the typed signature of a stale
    /// checkpoint (different design, seed, or Top-K renumbering). The
    /// engine is untouched on error.
    pub fn restore(&self, engine: &mut InstaEngine) -> Result<(), PersistError> {
        if self.arc_mean.len() != engine.st.arc_mean.len() {
            return Err(PersistError::Mismatch {
                what: "arc_mean",
                expected: engine.st.arc_mean.len(),
                got: self.arc_mean.len(),
            });
        }
        if self.arc_sigma.len() != engine.st.arc_sigma.len() {
            return Err(PersistError::Mismatch {
                what: "arc_sigma",
                expected: engine.st.arc_sigma.len(),
                got: self.arc_sigma.len(),
            });
        }
        engine.st.arc_mean.clone_from(&self.arc_mean);
        engine.st.arc_sigma.clone_from(&self.arc_sigma);
        engine.epoch = self.epoch;
        engine.drift.updates = self.drift_updates;
        engine.drift.mass = self.drift_mass;
        // The annotation overwrite invalidates every derived array, same
        // as a re-annotation would.
        engine.topk_synced = false;
        engine.state.lse_tau_used = None;
        Ok(())
    }

    /// Encodes the state as a self-contained payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.epoch);
        e.u64(self.drift_updates);
        e.f64(self.drift_mass);
        enc_pairs(&mut e, &self.arc_mean);
        enc_pairs(&mut e, &self.arc_sigma);
        e.into_bytes()
    }

    /// Decodes a payload produced by [`encode`](Self::encode).
    pub fn decode(bytes: &[u8]) -> Result<Self, PersistError> {
        let mut d = Dec::new(bytes);
        let state = EngineDurableState {
            epoch: d.u64("durable epoch")?,
            drift_updates: d.u64("durable drift updates")?,
            drift_mass: d.f64("durable drift mass")?,
            arc_mean: dec_pairs(&mut d, "durable arc_mean")?,
            arc_sigma: dec_pairs(&mut d, "durable arc_sigma")?,
        };
        d.finish()?;
        Ok(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::tests::build_engine;

    fn sample_deltas() -> Vec<ArcDelta> {
        vec![
            ArcDelta {
                arc: 3,
                mean: [12.5, -0.0],
                sigma: [1.25, f64::MIN_POSITIVE],
            },
            ArcDelta {
                arc: 0,
                mean: [f64::MAX, 1e-300],
                sigma: [0.0, 7.75],
            },
        ]
    }

    /// Writer ops round-trip bit-exactly, including awkward floats.
    #[test]
    fn writer_op_round_trip() {
        for op in [WriterOp::Propagate, WriterOp::Update(sample_deltas())] {
            let bytes = op.encode();
            let back = WriterOp::decode(&bytes).expect("round trip");
            assert_eq!(back, op);
        }
        // -0.0 must survive as -0.0, not 0.0 (PartialEq can't see this).
        let bytes = WriterOp::Update(sample_deltas()).encode();
        let WriterOp::Update(d) = WriterOp::decode(&bytes).unwrap() else {
            panic!("wrong op");
        };
        assert_eq!(d[0].mean[1].to_bits(), (-0.0f64).to_bits());
    }

    /// Every truncation of a valid op payload yields a typed error —
    /// never a panic, never a silent partial decode.
    #[test]
    fn writer_op_truncations_are_typed() {
        let bytes = WriterOp::Update(sample_deltas()).encode();
        for cut in 0..bytes.len() {
            let err = WriterOp::decode(&bytes[..cut]).expect_err("must fail");
            assert!(
                matches!(
                    err,
                    PersistError::Truncated { .. } | PersistError::BadLength { .. }
                ),
                "cut at {cut}: {err:?}"
            );
        }
        // Trailing garbage is also rejected.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(matches!(
            WriterOp::decode(&padded),
            Err(PersistError::TrailingBytes { extra: 1 })
        ));
        // Unknown tag is typed.
        assert!(matches!(
            WriterOp::decode(&[0x7F]),
            Err(PersistError::BadTag { .. })
        ));
    }

    /// A snapshot survives the codec with bit-identical slacks, arrivals,
    /// counters, and a working rebuilt lookup index.
    #[test]
    fn snapshot_round_trip_is_bit_identical() {
        let (_d, _sta, mut eng) = build_engine(21, 8);
        eng.propagate();
        let snap = eng.snapshot();
        let bytes = encode_snapshot(&snap);
        let back = decode_snapshot(&bytes).expect("round trip");
        assert_eq!(back, snap);
        let (r0, r1) = (snap.report().unwrap(), back.report().unwrap());
        for (a, b) in r0.slacks.iter().zip(&r1.slacks) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // The rebuilt orig_index serves the same arrivals.
        for &orig in eng.st.node_orig.iter().take(16) {
            for rf in 0..2 {
                assert_eq!(
                    snap.arrival_at(orig, rf).map(f64::to_bits),
                    back.arrival_at(orig, rf).map(f64::to_bits)
                );
            }
        }
    }

    /// A pre-propagation snapshot (no report) also round-trips.
    #[test]
    fn empty_snapshot_round_trips() {
        let (_d, _sta, eng) = build_engine(22, 4);
        let snap = eng.snapshot();
        let back = decode_snapshot(&encode_snapshot(&snap)).expect("round trip");
        assert_eq!(back, snap);
        assert!(back.report().is_none());
    }

    /// Every truncation of a snapshot payload decodes to a typed error.
    #[test]
    fn snapshot_truncations_are_typed() {
        let (_d, _sta, mut eng) = build_engine(23, 4);
        eng.propagate();
        let bytes = encode_snapshot(&eng.snapshot());
        // Stride 7 keeps the sweep fast while still hitting every field
        // class; the first/last 64 cuts run exhaustively.
        let cuts = (0..bytes.len()).filter(|c| c % 7 == 0 || *c < 64 || bytes.len() - c < 64);
        for cut in cuts {
            assert!(
                decode_snapshot(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    /// Durable state capture → restore into a fresh twin reproduces the
    /// committed slacks bit-exactly after one propagation.
    #[test]
    fn durable_state_restore_reproduces_bits() {
        let (_d, _sta, mut eng) = build_engine(24, 8);
        eng.propagate();
        // Advance the timeline through real committed sessions.
        for round in 0..3u32 {
            let mut s = eng.begin_session();
            s.update_timing(&[ArcDelta {
                arc: round,
                mean: [40.0 + f64::from(round), 41.0],
                sigma: [4.0, 4.5],
            }])
            .expect("valid");
            s.commit().expect("commit");
        }
        let golden: Vec<u64> = eng.report().slacks.iter().map(|s| s.to_bits()).collect();
        let state = EngineDurableState::capture(&eng);
        let bytes = state.encode();
        let decoded = EngineDurableState::decode(&bytes).expect("round trip");
        assert_eq!(decoded, state);

        // A fresh twin from the same seed, restored + propagated, must
        // land on identical bits and epoch.
        let (_d2, _sta2, mut twin) = build_engine(24, 8);
        decoded.restore(&mut twin).expect("same design");
        twin.propagate();
        assert_eq!(twin.epoch(), eng.epoch());
        let got: Vec<u64> = twin.report().slacks.iter().map(|s| s.to_bits()).collect();
        assert_eq!(got, golden);
    }

    /// Restoring state whose arrays don't fit the engine (a stale
    /// checkpoint from another design) is a typed mismatch and leaves the
    /// engine untouched.
    #[test]
    fn stale_restore_is_typed_and_harmless() {
        let (_d, _sta, mut eng) = build_engine(25, 8);
        eng.propagate();
        let mut state = EngineDurableState::capture(&eng);
        state.arc_mean.pop();
        state.epoch = 99;
        let before: Vec<u64> = eng.report().slacks.iter().map(|s| s.to_bits()).collect();
        let before_epoch = eng.epoch();
        let err = state.restore(&mut eng).expect_err("wrong arc count");
        assert!(matches!(
            err,
            PersistError::Mismatch {
                what: "arc_mean",
                ..
            }
        ));
        assert_eq!(eng.epoch(), before_epoch);
        let after: Vec<u64> = eng.report().slacks.iter().map(|s| s.to_bits()).collect();
        assert_eq!(before, after, "failed restore must not mutate the engine");
    }
}
