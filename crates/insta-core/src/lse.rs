//! Differentiable forward pass: Log-Sum-Exp smooth-max merging (paper
//! §III-F, Eqs. 4–6).
//!
//! The evaluation kernel's "greater than" merge blocks gradient flow from
//! sub-critical paths, so the differentiable pass replaces it with the
//! numerically stable LSE operator. For every `(pin, transition)` the pass
//! computes
//!
//! ```text
//! LSE({A_i}) = M + τ · ln Σ exp((A_i − M)/τ),   M = max A_i
//! ```
//!
//! over the candidate arrivals `A_i = arrival(parent, prf) + d_arc`, where
//! `d_arc = μ_arc + N_σ·σ_arc` is the linearized corner cost of the arc,
//! and stores the softmax weight of each candidate (Eq. 6) for the backward
//! kernel. As τ → 0 the pass converges to the evaluation maximum.

use crate::engine::{InstaEngine, State, Static};
use crate::error::{InstaError, Kernel, RuntimeIncident};
use crate::parallel::{chaos, resolve_threads, Interrupt, PanicCell, PAR_THRESHOLD};
use crate::stat::{with_model, StatModel};
use crate::trace::LevelProfile;
use std::panic::{catch_unwind, AssertUnwindSafe};

impl InstaEngine {
    /// Runs the differentiable forward pass, filling per-node smooth
    /// arrivals and per-arc softmax weights.
    ///
    /// # Panics
    ///
    /// Panics if a worker panic could not be contained (see
    /// [`try_forward_lse`](InstaEngine::try_forward_lse)).
    pub fn forward_lse(&mut self) {
        if let Err(e) = self.try_forward_lse() {
            panic!("forward_lse failed: {e}");
        }
    }

    /// Fallible [`forward_lse`](InstaEngine::forward_lse) with the same
    /// worker-panic containment contract as
    /// [`try_propagate`](InstaEngine::try_propagate).
    pub fn try_forward_lse(&mut self) -> Result<(), InstaError> {
        self.last_incident = None;
        self.lse_writes += 1;
        self.state.lse_tau_used = None;
        self.trace.begin("forward_lse");
        let res = with_model!(&self.backend, m => forward_lse(
            &self.st,
            &mut self.state,
            self.cfg.lse_tau,
            self.cfg.n_threads,
            self.interrupt.as_ref(),
            self.trace.profile_mut(Kernel::ForwardLse),
            m,
        ));
        self.trace
            .end_with(&[("ok", if res.is_ok() { 1.0 } else { 0.0 })]);
        match res {
            Ok(incident) => {
                if let Some(inc) = &incident {
                    self.record_incident(inc);
                }
                self.last_incident = incident;
                self.state.lse_tau_used = Some(self.cfg.lse_tau);
                Ok(())
            }
            Err(e) => {
                if let InstaError::Runtime(inc) = &e {
                    self.record_incident(inc);
                }
                Err(e)
            }
        }
    }

    /// The smooth (LSE) corner arrival at a renumbered node, `None` when
    /// unreached.
    #[cfg(test)]
    pub(crate) fn lse_arrival(&self, node: usize, rf: usize) -> Option<f64> {
        let a = self.state.lse_arrival[node * 2 + rf];
        (a != f64::NEG_INFINITY).then_some(a)
    }
}

/// Applies the corner launch arrivals for sources whose node lies in
/// `range`.
fn seed_lse_sources<M: StatModel>(
    st: &Static,
    state: &mut State,
    range: std::ops::Range<usize>,
    model: &M,
) {
    for s in &st.sources {
        let v = s.node as usize;
        if !range.contains(&v) {
            continue;
        }
        for rf in 0..2 {
            state.lse_arrival[v * 2 + rf] = model.corner_late(s.mean[rf], s.sigma[rf], st.n_sigma);
        }
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn forward_lse<M: StatModel>(
    st: &Static,
    state: &mut State,
    tau: f64,
    n_threads: usize,
    interrupt: Option<&Interrupt>,
    prof: Option<&mut LevelProfile>,
    model: &M,
) -> Result<Option<RuntimeIncident>, InstaError> {
    let ann = |ai: usize, rf: usize| (st.arc_mean[ai][rf], st.arc_sigma[ai][rf]);
    forward_lse_with(st, state, tau, n_threads, interrupt, &ann, prof, model)
}

/// [`forward_lse`] with arc-annotation reads routed through `ann(ai, rf) →
/// (mean, sigma)`. The batched scenario path ([`crate::batch`]) uses this
/// to run the differentiable pass against one scenario's overlaid deltas
/// without mutating the engine's cloned annotations — sharing this body
/// (instead of maintaining a second LSE kernel) is what makes the batched
/// gradient bit-identical to a serial re-annotate + `forward_lse` run.
#[allow(clippy::too_many_arguments)]
pub(crate) fn forward_lse_with<M: StatModel>(
    st: &Static,
    state: &mut State,
    tau: f64,
    n_threads: usize,
    interrupt: Option<&Interrupt>,
    ann: &(impl Fn(usize, usize) -> (f64, f64) + Sync),
    mut prof: Option<&mut LevelProfile>,
    model: &M,
) -> Result<Option<RuntimeIncident>, InstaError> {
    debug_assert!(tau > 0.0);
    // Restart the interrupt's reporting clock at pass entry (see
    // `Interrupt::restarted`).
    let restarted = interrupt.map(Interrupt::restarted);
    let interrupt = restarted.as_ref();
    lse_reset_seed(st, state, model);

    let nt = resolve_threads(n_threads);
    let mut recovered: Option<RuntimeIncident> = None;
    if let Some(p) = prof.as_deref_mut() {
        p.passes += 1;
    }
    for l in 1..st.num_levels() {
        // One cancellation poll per level (bounded-latency contract).
        if let Some(e) = interrupt.and_then(|i| i.check(Kernel::ForwardLse, l)) {
            return Err(e);
        }
        if let Some(inc) = lse_level(st, state, tau, nt, l, ann, prof.as_deref_mut(), model)? {
            recovered.get_or_insert(inc);
        }
    }
    Ok(recovered)
}

/// Resets the LSE arrival/weight buffers and applies the source seeds —
/// the pre-sweep state both [`forward_lse_with`] and the fused sweep
/// ([`crate::forward::forward_fused`]) start from.
pub(crate) fn lse_reset_seed<M: StatModel>(st: &Static, state: &mut State, model: &M) {
    state.lse_arrival.fill(f64::NEG_INFINITY);
    for w in state.lse_weight.iter_mut() {
        *w = [0.0; 2];
    }
    seed_lse_sources(st, state, 0..st.n, model);
}

/// One level of the differentiable forward pass: parallel launch, panic
/// containment + serial retry, and per-level profiling for level `l`.
/// Shared verbatim by [`forward_lse_with`] and the fused sweep — level
/// `l` reads only earlier levels' smooth arrivals, so interleaving whole
/// level bodies with the evaluation kernel changes nothing it computes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn lse_level<M: StatModel>(
    st: &Static,
    state: &mut State,
    tau: f64,
    nt: usize,
    l: usize,
    ann: &(impl Fn(usize, usize) -> (f64, f64) + Sync),
    mut prof: Option<&mut LevelProfile>,
    model: &M,
) -> Result<Option<RuntimeIncident>, InstaError> {
    let mut recovered: Option<RuntimeIncident> = None;
    {
        let r = st.level_range(l);
        let (base, len) = (r.start, r.len());
        if len == 0 {
            return Ok(None);
        }
        let t_level = prof.is_some().then(std::time::Instant::now);
        // The level's fanin arcs are contiguous because arcs are stored in
        // renumbered-child order.
        let arc_lo = st.fanin_start[base] as usize;
        let arc_hi = st.fanin_start[base + len] as usize;
        let panicked = {
            let node_split = base * 2;
            let (done, cur_all) = state.lse_arrival.split_at_mut(node_split);
            let cur = &mut cur_all[..len * 2];
            let weights = &mut state.lse_weight[arc_lo..arc_hi];

            if nt <= 1 || len < PAR_THRESHOLD {
                lse_chunk(st, tau, base, base..base + len, done, cur, weights, arc_lo, ann, model);
                None
            } else {
                let chunk_nodes = len.div_ceil(nt);
                let cell = PanicCell::new();
                std::thread::scope(|scope| {
                    let mut rest_nodes = cur;
                    let mut rest_weights = weights;
                    let mut s0 = base;
                    while s0 < base + len {
                        let e0 = (s0 + chunk_nodes).min(base + len);
                        let take_nodes = (e0 - s0) * 2;
                        let take_arcs =
                            st.fanin_start[e0] as usize - st.fanin_start[s0] as usize;
                        let (cn, rn) = rest_nodes.split_at_mut(take_nodes);
                        let (cw, rw) = rest_weights.split_at_mut(take_arcs);
                        rest_nodes = rn;
                        rest_weights = rw;
                        let done_ref = &*done;
                        let w_base = st.fanin_start[s0] as usize;
                        let cell = &cell;
                        scope.spawn(move || {
                            cell.run(s0..e0, || {
                                chaos::maybe_panic(Kernel::ForwardLse, l);
                                lse_chunk(
                                    st, tau, base, s0..e0, done_ref, cn, cw, w_base, ann, model,
                                );
                            });
                        });
                        s0 = e0;
                    }
                });
                cell.take()
            }
        };
        if let Some((chunk, message)) = panicked {
            let incident = RuntimeIncident {
                kernel: Kernel::ForwardLse,
                level: l,
                chunk,
                message,
                serial_retry_failed: false,
            };
            let retry = catch_unwind(AssertUnwindSafe(|| {
                state.lse_arrival[base * 2..(base + len) * 2].fill(f64::NEG_INFINITY);
                for w in state.lse_weight[arc_lo..arc_hi].iter_mut() {
                    *w = [0.0; 2];
                }
                seed_lse_sources(st, state, base..base + len, model);
                chaos::maybe_panic(Kernel::ForwardLse, l);
                let (done, cur_all) = state.lse_arrival.split_at_mut(base * 2);
                lse_chunk(
                    st,
                    tau,
                    base,
                    base..base + len,
                    done,
                    &mut cur_all[..len * 2],
                    &mut state.lse_weight[arc_lo..arc_hi],
                    arc_lo,
                    ann,
                    model,
                );
            }));
            match retry {
                Ok(()) => {
                    recovered.get_or_insert(incident);
                }
                Err(_) => {
                    return Err(InstaError::Runtime(RuntimeIncident {
                        serial_retry_failed: true,
                        ..incident
                    }))
                }
            }
        }
        if let (Some(p), Some(t0)) = (prof.as_deref_mut(), t_level) {
            p.record_level(l, t0.elapsed().as_nanos() as u64, len as u64);
        }
    }
    #[cfg(debug_assertions)]
    crate::health::debug_assert_lse_level_clean(st, state, l);
    Ok(recovered)
}

/// Per-thread body: nodes `range` of the level starting at `level_base`.
/// `cur` holds the 2-per-node arrivals of the range; `weights` holds the
/// fanin-arc weights of the range, offset by `w_base`.
#[allow(clippy::too_many_arguments)]
#[allow(clippy::needless_range_loop)] // rf indexes parallel [f64; 2] slots
fn lse_chunk<M: StatModel>(
    st: &Static,
    tau: f64,
    level_base: usize,
    range: std::ops::Range<usize>,
    done: &[f64],
    cur: &mut [f64],
    weights: &mut [[f64; 2]],
    w_base: usize,
    ann: &impl Fn(usize, usize) -> (f64, f64),
    model: &M,
) {
    let chunk_node_base = range.start;
    for v in range {
        let fanin = st.fanin_range(v);
        if fanin.is_empty() {
            continue;
        }
        for rf in 0..2usize {
            // Pass 1: candidate values and running max.
            let mut m = f64::NEG_INFINITY;
            for ai in fanin.clone() {
                let p = st.arc_parent[ai] as usize;
                debug_assert!(p < level_base);
                let prf = if st.arc_neg[ai] { 1 - rf } else { rf };
                let pa = done[p * 2 + prf];
                let c = if pa == f64::NEG_INFINITY {
                    f64::NEG_INFINITY
                } else {
                    let (a_mean, a_sigma) = ann(ai, rf);
                    model.lse_candidate(pa, a_mean, a_sigma, st.n_sigma)
                };
                weights[ai - w_base][rf] = c;
                if c > m {
                    m = c;
                }
            }
            let out_idx = (v - chunk_node_base) * 2 + rf;
            if m == f64::NEG_INFINITY {
                cur[out_idx] = f64::NEG_INFINITY;
                for ai in fanin.clone() {
                    weights[ai - w_base][rf] = 0.0;
                }
                continue;
            }
            // Pass 2: exponentiate and accumulate the denominator.
            let mut denom = 0.0;
            for ai in fanin.clone() {
                let c = weights[ai - w_base][rf];
                let e = if c == f64::NEG_INFINITY {
                    0.0
                } else {
                    ((c - m) / tau).exp()
                };
                weights[ai - w_base][rf] = e;
                denom += e;
            }
            // Pass 3: normalize into softmax weights (Eq. 6).
            for ai in fanin.clone() {
                weights[ai - w_base][rf] /= denom;
            }
            cur[out_idx] = m + tau * denom.ln();
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::{InstaConfig, InstaEngine};
    use insta_netlist::generator::{generate_design, GeneratorConfig};
    use insta_refsta::{RefSta, StaConfig};

    fn engine(seed: u64, tau: f64) -> InstaEngine {
        let d = generate_design(&GeneratorConfig::small("lse", seed));
        let mut sta = RefSta::new(&d, StaConfig::default()).expect("build");
        sta.full_update(&d);
        InstaEngine::new(
            sta.export_insta_init(),
            InstaConfig {
                lse_tau: tau,
                ..InstaConfig::default()
            },
        ).expect("valid snapshot")
    }

    /// LSE is an upper bound of the max and converges to it as τ → 0
    /// (paper Eq. 5).
    #[test]
    fn lse_upper_bounds_max_and_converges() {
        let mut tight = engine(1, 0.01);
        tight.propagate();
        tight.forward_lse();
        let mut loose = engine(1, 5.0);
        loose.propagate();
        loose.forward_lse();
        let n = tight.num_nodes();
        let mut max_gap_tight = 0.0_f64;
        let mut max_gap_loose = 0.0_f64;
        for v in 0..n {
            for rf in 0..2 {
                // Hard max over candidates equals the Top-K=32 head entry
                // arrival when sigma composition matches; compare the
                // smooth arrival of both temperatures instead, which is
                // self-consistent: LSE_tau >= LSE_0 and gap grows with tau.
                let (Some(t), Some(l)) = (tight.lse_arrival(v, rf), loose.lse_arrival(v, rf))
                else {
                    continue;
                };
                assert!(l >= t - 1e-6, "larger tau must not decrease LSE");
                max_gap_tight = max_gap_tight.max((t - l).abs());
                max_gap_loose = max_gap_loose.max((l - t).abs());
            }
        }
        assert!(max_gap_loose > 0.0, "temperatures must differ somewhere");
    }

    /// Softmax weights per (node, rf) sum to 1 wherever the node is
    /// reached.
    #[test]
    fn weights_are_normalized() {
        let mut eng = engine(2, 1.0);
        eng.forward_lse();
        let st = &eng.st;
        let state = &eng.state;
        for v in 0..st.n {
            let fanin = st.fanin_range(v);
            if fanin.is_empty() {
                continue;
            }
            for rf in 0..2 {
                if state.lse_arrival[v * 2 + rf] == f64::NEG_INFINITY {
                    continue;
                }
                let total: f64 = fanin.clone().map(|ai| state.lse_weight[ai][rf]).sum();
                assert!(
                    (total - 1.0).abs() < 1e-9,
                    "weights at node {v} rf {rf} sum to {total}"
                );
            }
        }
    }

    /// At tiny τ the most critical candidate takes essentially all the
    /// weight (softmax sharpness).
    #[test]
    fn tiny_tau_concentrates_weight() {
        let mut eng = engine(3, 1e-4);
        eng.forward_lse();
        let st = &eng.st;
        let state = &eng.state;
        let mut checked = 0;
        for v in 0..st.n {
            let fanin = st.fanin_range(v);
            if fanin.len() < 2 || state.lse_arrival[v * 2] == f64::NEG_INFINITY {
                continue;
            }
            let max_w = fanin
                .clone()
                .map(|ai| state.lse_weight[ai][0])
                .fold(0.0_f64, f64::max);
            assert!(max_w > 0.99, "expected concentration, got {max_w}");
            checked += 1;
        }
        assert!(checked > 0, "no multi-fanin node exercised");
    }
}
