//! Cross-backend differential + convergence suite (the multi-backend
//! statistics lockdown).
//!
//! Two contracts, one file:
//!
//! 1. **Gaussian identity.** The kernels now reach their numerics through
//!    the [`StatModel`] trait. Selecting the Gaussian POCV backend must
//!    compile to *exactly* the pre-refactor code: every test here pins the
//!    trait-generic path against the frozen pre-overhaul scalar kernels
//!    (`insta_engine::scalar_ref`) on raw `f64::to_bits` — across Top-K
//!    capacities {2, 4, 8}, thread counts {1, 2, 8}, fused vs separate
//!    sweeps, batch lanes {1, 16, 64}, the gradient pipeline, and hold.
//!    No tolerances: a single differing bit is a regression.
//!
//! 2. **Histogram convergence.** The fixed-bin histogram backend run on
//!    Gaussian inputs must *converge to POCV as bins grow*: per-endpoint
//!    arrival CDF distance and WNS/TNS error shrink monotonically over
//!    {16, 64, 256} bins, on fixed designs and on seeded random DAGs.
//!
//! Satellite edge cases ride along: a degenerate histogram config is a
//! typed validation error (never a panic), zero-sigma inputs are exact
//! under both backends, support-range clipping clamps, and NaN poison is
//! localized by `health_check()` under the histogram backend exactly as
//! under the Gaussian one.

use insta_engine::stat::normal_cdf;
use insta_engine::{
    hold_attributes, DeltaSet, FixedBinHistogram, InstaConfig, InstaEngine, InstaReport,
    StatBackendKind, StatModelConfig, ValidationMode,
};
use insta_netlist::generator::{generate_design, GeneratorConfig};
use insta_netlist::Design;
use insta_refsta::eco::ArcDelta;
use insta_refsta::export::InstaInit;
use insta_refsta::{RefSta, StaConfig};
use insta_support::prop::{for_all, Config};
use insta_support::rng::Rng;
use insta_support::prop_assert;

const SUITE_SEED: u64 = 0xBAC_E9D5;

/// The gated bin ladder: each step quarters the bin width, so the O(h²)
/// per-operation error drops ~16× per step — far above any plausible
/// noise, which is what makes the monotonicity assertions robust.
const BIN_LADDER: [u32; 3] = [16, 64, 256];

fn gaussian_cfg() -> InstaConfig {
    InstaConfig {
        // Explicitly selected (not defaulted): this suite pins the
        // *selector* path, not just the Default impl.
        stat_model: StatModelConfig::GaussianPocv,
        ..InstaConfig::default()
    }
}

fn histogram_cfg(bins: u32) -> InstaConfig {
    InstaConfig {
        stat_model: StatModelConfig::FixedBinHistogram {
            bins,
            support_sigmas: FixedBinHistogram::DEFAULT_SUPPORT_SIGMAS,
        },
        ..InstaConfig::default()
    }
}

fn build(gen: &GeneratorConfig, cfg: InstaConfig) -> (Design, RefSta, InstaEngine) {
    let design = generate_design(gen);
    let mut golden = RefSta::new(&design, StaConfig::default()).expect("build");
    golden.full_update(&design);
    let engine = InstaEngine::new(golden.export_insta_init(), cfg).expect("valid snapshot");
    (design, golden, engine)
}

/// A design wide enough that at least one level crosses the engine's
/// parallel threshold (512 nodes), so thread counts > 1 exercise the real
/// chunk-carving path rather than falling back to the serial branch.
fn wide_config(seed: u64) -> GeneratorConfig {
    GeneratorConfig {
        n_flops: 64,
        logic_levels: 3,
        gates_per_level: 900,
        ..GeneratorConfig::small("beq_wide", seed)
    }
}

fn topk_bits(e: &InstaEngine) -> Vec<u64> {
    let (a, m, s, sp) = e.topk_snapshot();
    let mut bits: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
    bits.extend(m.iter().map(|v| v.to_bits()));
    bits.extend(s.iter().map(|v| v.to_bits()));
    bits.extend(sp.iter().map(|&v| u64::from(v)));
    bits
}

fn lse_bits(e: &InstaEngine) -> Vec<u64> {
    let (a, w) = e.lse_snapshot();
    let mut bits: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
    bits.extend(w.iter().flat_map(|p| [p[0].to_bits(), p[1].to_bits()]));
    bits
}

fn grad_bits(e: &InstaEngine) -> Vec<u64> {
    let (ga, gc) = e.grad_snapshot();
    let mut bits: Vec<u64> = ga.iter().map(|v| v.to_bits()).collect();
    bits.extend(gc.iter().flat_map(|p| [p[0].to_bits(), p[1].to_bits()]));
    bits
}

fn report_bits(r: &InstaReport) -> Vec<u64> {
    let mut bits = vec![r.wns_ps.to_bits(), r.tns_ps.to_bits(), r.n_violations as u64];
    bits.extend(r.slacks.iter().map(|v| v.to_bits()));
    bits.extend(r.arrivals.iter().map(|v| v.to_bits()));
    bits.extend(r.requireds.iter().map(|v| v.to_bits()));
    bits.extend(r.worst_sp.iter().map(|&v| u64::from(v)));
    bits.extend(r.worst_rf.iter().map(|&v| v as u64));
    bits
}

// ---------------------------------------------------------------------
// Part 1: the trait-generic Gaussian path is the pre-refactor kernel.
// ---------------------------------------------------------------------

/// Top-K capacities {2, 4, 8} (the compare-exchange network sizes): the
/// trait-generic forward pass equals the frozen scalar reference bit for
/// bit — Top-K arrays and endpoint report.
#[test]
fn generic_gaussian_forward_matches_scalar_reference_across_k() {
    let gens = [
        GeneratorConfig::small("beq_small", 3),
        GeneratorConfig::medium("beq_medium", 7),
    ];
    for gen in &gens {
        for k in [2usize, 4, 8] {
            let cfg = InstaConfig {
                top_k: k,
                ..gaussian_cfg()
            };
            let (_, _, mut fast) = build(gen, cfg.clone());
            let (_, _, mut reference) = build(gen, cfg);
            let got = report_bits(fast.propagate());
            let want = report_bits(reference.forward_scalar_reference());
            assert_eq!(got, want, "report differs (design {}, k={k})", gen.name);
            assert_eq!(
                topk_bits(&fast),
                topk_bits(&reference),
                "Top-K arrays differ (design {}, k={k})",
                gen.name
            );
        }
    }
}

/// Thread counts {1, 2, 8} over a level wide enough to cross the parallel
/// threshold: the model reference handed to every worker thread must not
/// change a bit.
#[test]
fn generic_gaussian_forward_matches_across_thread_counts() {
    let gen = wide_config(5);
    let (_, _, mut reference) = build(&gen, gaussian_cfg());
    reference.forward_scalar_reference();
    let want = topk_bits(&reference);

    for n_threads in [1usize, 2, 8] {
        let cfg = InstaConfig {
            n_threads,
            ..gaussian_cfg()
        };
        let (_, _, mut fast) = build(&gen, cfg);
        fast.enable_tracing();
        fast.propagate();
        assert_eq!(
            topk_bits(&fast),
            want,
            "Top-K arrays differ at n_threads={n_threads}"
        );
        let widest = fast
            .perf_report()
            .rows
            .iter()
            .map(|r| r.nodes)
            .max()
            .unwrap_or(0);
        assert!(
            widest >= 512,
            "fixture too narrow to exercise the parallel path ({widest} nodes)"
        );
    }
}

/// Fused evaluation + LSE vs separate passes vs the scalar reference,
/// under the trait-generic Gaussian path.
#[test]
fn generic_gaussian_fused_matches_separate_and_scalar_reference() {
    let gen = GeneratorConfig::medium("beq_fused", 23);
    let cfg = InstaConfig {
        lse_tau: 5.0,
        ..gaussian_cfg()
    };
    let (_, _, mut fused) = build(&gen, cfg.clone());
    let (_, _, mut separate) = build(&gen, cfg.clone());
    let (_, _, mut reference) = build(&gen, cfg);

    let fused_report = report_bits(fused.propagate_fused());
    let separate_report = report_bits(separate.propagate());
    separate.forward_lse();
    let reference_report = report_bits(reference.forward_scalar_reference());
    reference.forward_lse_scalar_reference();

    assert_eq!(fused_report, separate_report, "fused report");
    assert_eq!(separate_report, reference_report, "report");
    assert_eq!(topk_bits(&fused), topk_bits(&separate), "fused topk");
    assert_eq!(topk_bits(&separate), topk_bits(&reference), "topk");
    assert_eq!(lse_bits(&fused), lse_bits(&separate), "fused lse");
    assert_eq!(lse_bits(&separate), lse_bits(&reference), "lse");
}

/// The gradient pipeline (LSE forward + backward TNS pull) through the
/// trait seam: gradients on top of the generic LSE pass equal gradients
/// on top of the frozen scalar LSE pass.
#[test]
fn generic_gaussian_gradients_match_scalar_reference() {
    let gen = GeneratorConfig::medium("beq_grad", 41);
    let (_, _, mut fast) = build(&gen, gaussian_cfg());
    let (_, _, mut reference) = build(&gen, gaussian_cfg());

    fast.propagate();
    fast.forward_lse();
    fast.backward_tns();

    reference.forward_scalar_reference();
    reference.forward_lse_scalar_reference();
    reference.backward_tns();

    assert_eq!(grad_bits(&fast), grad_bits(&reference), "gradients differ");
    assert_eq!(
        fast.arc_gradients().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        reference
            .arc_gradients()
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        "accumulated arc gradients differ"
    );
}

/// Hold's min-merge reaches `corner_min` / `hold_slack` through the
/// trait; it must still match the frozen pre-overhaul min kernel.
#[test]
fn generic_gaussian_hold_matches_scalar_reference() {
    for seed in [13u64, 37] {
        let gen = GeneratorConfig::small("beq_hold", seed);
        let (design, golden, mut fast) = build(&gen, gaussian_cfg());
        let (_, _, mut reference) = build(&gen, gaussian_cfg());
        let attrs = hold_attributes(&design, &golden);
        let got = report_bits(&fast.propagate_hold(&attrs));
        let want = report_bits(&reference.hold_scalar_reference(&attrs));
        assert_eq!(got, want, "hold report differs (seed {seed})");
        assert_eq!(
            topk_bits(&fast),
            topk_bits(&reference),
            "min-mode Top-K arrays differ (seed {seed})"
        );
    }
}

/// Random valid delta sets jittered off the golden delays.
fn random_scenarios(golden: &RefSta, rng: &mut Rng, s: usize) -> Vec<DeltaSet> {
    let delays = golden.delays();
    let n_arcs = delays.mean.len() as u64;
    (0..s)
        .map(|_| {
            let len = rng.bounded_u64(6) as usize;
            let deltas = (0..len)
                .map(|_| {
                    let arc = rng.bounded_u64(n_arcs) as u32;
                    let mean = delays.mean[arc as usize];
                    let sigma = delays.sigma[arc as usize];
                    ArcDelta {
                        arc,
                        mean: [
                            mean[0] + rng.next_f64() * 20.0 - 10.0,
                            mean[1] + rng.next_f64() * 20.0 - 10.0,
                        ],
                        sigma: [
                            sigma[0] * (1.0 + rng.next_f64()),
                            sigma[1] * (1.0 + rng.next_f64()),
                        ],
                    }
                })
                .collect();
            DeltaSet { deltas }
        })
        .collect()
}

/// Batch lanes {1, 16, 64} under the trait-generic Gaussian path (with
/// per-lane gradients, which route through the model-threaded scratch
/// passes): every lane equals re-annotating a clone and running the
/// frozen scalar forward pass.
#[test]
fn generic_gaussian_batch_lanes_match_scalar_reference() {
    for lanes in [1usize, 16, 64] {
        let gen = GeneratorConfig::small("beq_batch", 47);
        let (_, golden, mut engine) = build(&gen, gaussian_cfg());
        engine.propagate();
        let mut rng = Rng::seed_from_u64(SUITE_SEED ^ lanes as u64);
        let scenarios = random_scenarios(&golden, &mut rng, lanes);

        let got = engine.evaluate_batch(&scenarios);
        assert_eq!(got.len(), lanes);
        for (i, sc) in scenarios.iter().enumerate() {
            let mut reference = engine.clone();
            reference.reannotate(&sc.deltas).expect("valid deltas");
            let want = report_bits(reference.forward_scalar_reference());
            let report = got[i].outcome.as_ref().expect("valid scenario");
            assert_eq!(
                report_bits(report),
                want,
                "scenario {i} of {lanes} differs from the scalar reference"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Part 2: the histogram backend converges to POCV on Gaussian inputs.
// ---------------------------------------------------------------------

/// One design's convergence measurements at a given bin count, against a
/// Gaussian-backend run of the same snapshot: the worst per-endpoint
/// Kolmogorov distance between the backends' modeled arrival CDFs, and
/// the absolute WNS / TNS errors.
fn convergence_errors(
    init: &InstaInit,
    gaussian: &InstaEngine,
    g_report: &InstaReport,
    bins: u32,
) -> (f64, f64, f64) {
    let mut hist = InstaEngine::new(init.clone(), histogram_cfg(bins)).expect("valid snapshot");
    let h_report = hist.propagate().clone();
    assert_eq!(hist.stat_backend(), StatBackendKind::FixedBinHistogram);
    assert_eq!(hist.stat_bins(), bins);

    let shape = FixedBinHistogram::new(bins, FixedBinHistogram::DEFAULT_SUPPORT_SIGMAS)
        .expect("valid shape");
    let mut worst_cdf_dist = 0.0f64;
    for (i, ep) in init.endpoints.iter().enumerate() {
        let rf = g_report.worst_rf[i] as usize;
        let Some((gm, gs)) = gaussian.distribution_at(ep.node, rf) else {
            continue;
        };
        let Some((hm, hs)) = hist.distribution_at(ep.node, rf) else {
            panic!("endpoint reached under Gaussian but not histogram");
        };
        // Kolmogorov distance on a grid spanning both distributions.
        let spread = gs.max(hs).max(1e-3);
        let (lo, hi) = (gm.min(hm) - 8.0 * spread, gm.max(hm) + 8.0 * spread);
        let mut d = 0.0f64;
        for step in 0..=200 {
            let x = lo + (hi - lo) * step as f64 / 200.0;
            let exact = if gs > 0.0 {
                normal_cdf((x - gm) / gs)
            } else if x < gm {
                0.0
            } else {
                1.0
            };
            d = d.max((shape.cdf(hm, hs, x) - exact).abs());
        }
        worst_cdf_dist = worst_cdf_dist.max(d);
    }
    (
        worst_cdf_dist,
        (h_report.wns_ps - g_report.wns_ps).abs(),
        (h_report.tns_ps - g_report.tns_ps).abs(),
    )
}

/// The headline convergence pin: on fixed designs, per-endpoint arrival
/// CDF distance and WNS/TNS error all shrink monotonically over the
/// {16, 64, 256} bin ladder.
#[test]
fn histogram_converges_to_pocv_monotonically_in_bins() {
    for gen in [
        // Tight clocks so both fixtures carry real violations: TNS is a
        // sum of negative slacks, and a violation-free design would make
        // the TNS-error ladder trivially all-zero.
        GeneratorConfig {
            clock_period_ps: 220.0,
            ..GeneratorConfig::small("beq_conv", 11)
        },
        GeneratorConfig {
            clock_period_ps: 330.0,
            ..GeneratorConfig::medium("beq_conv_m", 19)
        },
    ] {
        let design = generate_design(&gen);
        let mut golden = RefSta::new(&design, StaConfig::default()).expect("build");
        golden.full_update(&design);
        let init = golden.export_insta_init();

        let mut gaussian =
            InstaEngine::new(init.clone(), gaussian_cfg()).expect("valid snapshot");
        let g_report = gaussian.propagate().clone();
        assert!(g_report.n_violations > 0, "{}: fixture must violate", gen.name);

        let errs: Vec<(f64, f64, f64)> = BIN_LADDER
            .iter()
            .map(|&b| convergence_errors(&init, &gaussian, &g_report, b))
            .collect();
        let (cdf, wns, tns): (Vec<f64>, Vec<f64>, Vec<f64>) = (
            errs.iter().map(|e| e.0).collect(),
            errs.iter().map(|e| e.1).collect(),
            errs.iter().map(|e| e.2).collect(),
        );
        assert!(
            cdf[0] > cdf[1] && cdf[1] > cdf[2],
            "{}: CDF distance not monotone over bins {BIN_LADDER:?}: {cdf:?}",
            gen.name
        );
        assert!(
            wns[0] > wns[1] && wns[1] > wns[2],
            "{}: WNS error not monotone over bins {BIN_LADDER:?}: {wns:?}",
            gen.name
        );
        assert!(
            tns[0] > tns[1] && tns[1] > tns[2],
            "{}: TNS error not monotone over bins {BIN_LADDER:?}: {tns:?}",
            gen.name
        );
        // And B=256 is genuinely close: the discretization error at
        // h = 12/256 is far below a picosecond on these designs.
        assert!(wns[2] < 1.0, "{}: WNS error at 256 bins: {}", gen.name, wns[2]);
    }
}

/// Seeded property test: the same monotone convergence holds over random
/// DAG shapes, not just the two fixtures above.
#[test]
fn histogram_convergence_holds_over_random_dags() {
    for_all(
        Config::cases(6).seed(SUITE_SEED ^ 0xDA6),
        |rng| {
            (
                1 + rng.bounded_u64(4) as usize,
                1 + rng.bounded_u64(3) as usize,
                rng.next_u64(),
            )
        },
        |&(levels, gates, seed)| {
            let gen = GeneratorConfig {
                logic_levels: levels,
                gates_per_level: gates * 24,
                ..GeneratorConfig::small("beq_prop", seed)
            };
            let design = generate_design(&gen);
            let mut golden = RefSta::new(&design, StaConfig::default()).expect("build");
            golden.full_update(&design);
            let init = golden.export_insta_init();
            let mut gaussian =
                InstaEngine::new(init.clone(), gaussian_cfg()).expect("valid snapshot");
            let g_report = gaussian.propagate().clone();

            let errs: Vec<(f64, f64, f64)> = BIN_LADDER
                .iter()
                .map(|&b| convergence_errors(&init, &gaussian, &g_report, b))
                .collect();
            // Random shapes may park the worst path on a near-zero-sigma
            // cone where an error is already ~0; require non-strict
            // monotonicity per step plus strict end-to-end shrinkage.
            for w in [0usize, 1, 2] {
                let series = [errs[0], errs[1], errs[2]].map(|e| match w {
                    0 => e.0,
                    1 => e.1,
                    _ => e.2,
                });
                prop_assert!(
                    series[0] >= series[1] && series[1] >= series[2],
                    "metric {w} not monotone: {series:?}"
                );
            }
            prop_assert!(
                errs[0].0 > errs[2].0,
                "CDF distance did not shrink end-to-end: {} -> {}",
                errs[0].0,
                errs[2].0
            );
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Part 3: histogram edge cases — typed errors, never panics.
// ---------------------------------------------------------------------

/// A degenerate histogram config (single bin, zero bins, bad support) is
/// the same *typed* `InstaError::Validate` an invalid `top_k` would be —
/// reported through `InstaEngine::new`, never a panic.
#[test]
fn degenerate_histogram_configs_are_typed_validation_errors() {
    let gen = GeneratorConfig::small("beq_badcfg", 2);
    let design = generate_design(&gen);
    let mut golden = RefSta::new(&design, StaConfig::default()).expect("build");
    golden.full_update(&design);
    let init = golden.export_insta_init();

    for bins in [0u32, 1] {
        let cfg = InstaConfig {
            stat_model: StatModelConfig::FixedBinHistogram {
                bins,
                support_sigmas: 6.0,
            },
            ..InstaConfig::default()
        };
        let err = InstaEngine::new(init.clone(), cfg).expect_err("must reject");
        assert_eq!(err.category(), "validate", "bins={bins}");
    }
    for support in [0.0f64, -2.0, f64::NAN, f64::INFINITY] {
        let cfg = InstaConfig {
            stat_model: StatModelConfig::FixedBinHistogram {
                bins: 64,
                support_sigmas: support,
            },
            ..InstaConfig::default()
        };
        let err = InstaEngine::new(init.clone(), cfg).expect_err("must reject");
        assert_eq!(err.category(), "validate", "support={support}");
    }
}

/// Zero-sigma inputs are *exact* under the histogram backend: with every
/// launch and arc sigma zeroed, a histogram run at the coarsest gated bin
/// count is bit-identical to the Gaussian run (every measurement of
/// `mean + 0·Z` is `mean` under both models).
#[test]
fn zero_sigma_inputs_are_exact_under_the_histogram_backend() {
    let gen = GeneratorConfig::small("beq_zsig", 31);
    let design = generate_design(&gen);
    let mut golden = RefSta::new(&design, StaConfig::default()).expect("build");
    golden.full_update(&design);
    let mut init = golden.export_insta_init();
    for arc in &mut init.fanin {
        arc.sigma = [0.0, 0.0];
    }
    for src in &mut init.sources {
        src.sigma = [0.0, 0.0];
    }

    let mut gaussian =
        InstaEngine::new(init.clone(), gaussian_cfg()).expect("valid snapshot");
    let mut hist = InstaEngine::new(init, histogram_cfg(16)).expect("valid snapshot");
    let want = report_bits(gaussian.propagate());
    let got = report_bits(hist.propagate());
    assert_eq!(got, want, "zero-sigma reports differ between backends");
    assert_eq!(
        topk_bits(&hist),
        topk_bits(&gaussian),
        "zero-sigma Top-K arrays differ between backends"
    );
}

/// Support-range clipping: with a support far narrower than `n_sigma`,
/// the quantile saturates at the grid edge — corners clamp to
/// `mean + S·sigma`, health stays green, and nothing panics or NaNs.
#[test]
fn narrow_support_clips_instead_of_extrapolating() {
    let gen = GeneratorConfig::small("beq_clip", 43);
    let design = generate_design(&gen);
    let mut golden = RefSta::new(&design, StaConfig::default()).expect("build");
    golden.full_update(&design);
    let init = golden.export_insta_init();
    let support = 0.5f64;
    let cfg = InstaConfig {
        stat_model: StatModelConfig::FixedBinHistogram {
            bins: 32,
            support_sigmas: support,
        },
        ..InstaConfig::default()
    };
    let mut eng = InstaEngine::new(init.clone(), cfg).expect("valid snapshot");
    let report = eng.propagate().clone();
    eng.health_check().expect("clipped run must stay healthy");
    assert!(report.wns_ps.is_finite(), "clipped WNS must be finite");

    // Every reached endpoint's corner sits at most S sigmas above its
    // mean (the clamped quantile), never at the Gaussian n_sigma corner.
    for ep in &init.endpoints {
        for rf in 0..2 {
            let (Some(arr), Some((mean, sigma))) =
                (eng.arrival_at(ep.node, rf), eng.distribution_at(ep.node, rf))
            else {
                continue;
            };
            assert!(
                arr <= mean + support * sigma + 1e-9,
                "corner {arr} exceeds the clipped support (mean {mean}, sigma {sigma})"
            );
        }
    }
}

/// NaN poison injected past validation (Trust mode) is localized by
/// `health_check()` as a typed `InstaError::Numeric` under the histogram
/// backend — the no-NaN-escapes contract is backend-independent.
#[test]
fn histogram_nan_poison_is_localized_by_health_check() {
    let gen = GeneratorConfig::small("beq_nan", 53);
    let design = generate_design(&gen);
    let mut golden = RefSta::new(&design, StaConfig::default()).expect("build");
    golden.full_update(&design);
    let mut init = golden.export_insta_init();
    init.fanin[0].mean[0] = f64::NAN;

    let cfg = InstaConfig {
        validation: ValidationMode::Trust,
        ..histogram_cfg(64)
    };
    let mut eng = InstaEngine::new(init, cfg).expect("trust skips validation");
    // NaN never wins a max-compare, so propagation completes (in release
    // builds) and the poison surfaces in the explicit state scan.
    let completed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        eng.propagate();
    }));
    if completed.is_ok() {
        if let Err(err) = eng.health_check() {
            assert_eq!(err.category(), "numeric");
            let text = err.to_string();
            assert!(text.contains("level"), "{text}");
        }
    }
}

// ---------------------------------------------------------------------
// Part 4: the machinery is backend-agnostic.
// ---------------------------------------------------------------------

/// Fused and separate sweeps agree with each other *under the histogram
/// backend* too — backend choice changes the numbers, not the sweep
/// contract.
#[test]
fn histogram_fused_matches_separate_passes() {
    let gen = GeneratorConfig::small("beq_hfused", 59);
    let (_, _, mut fused) = build(&gen, histogram_cfg(64));
    let (_, _, mut separate) = build(&gen, histogram_cfg(64));
    let got = report_bits(fused.propagate_fused());
    let want = report_bits(separate.propagate());
    separate.forward_lse();
    assert_eq!(got, want, "fused vs separate report under histogram");
    assert_eq!(topk_bits(&fused), topk_bits(&separate), "topk");
    assert_eq!(lse_bits(&fused), lse_bits(&separate), "lse");
}

/// Batched evaluation under the histogram backend is bit-identical to
/// serial re-annotate + propagate of each scenario — the batch lanes
/// read their numerics through the same model.
#[test]
fn histogram_batch_lanes_match_serial_runs() {
    let gen = GeneratorConfig::small("beq_hbatch", 61);
    let (_, golden, mut engine) = build(&gen, histogram_cfg(32));
    engine.propagate();
    let mut rng = Rng::seed_from_u64(SUITE_SEED ^ 0xB47C);
    let scenarios = random_scenarios(&golden, &mut rng, 16);

    let got = engine.evaluate_batch(&scenarios);
    for (i, sc) in scenarios.iter().enumerate() {
        let mut serial = engine.clone();
        serial.reannotate(&sc.deltas).expect("valid deltas");
        let want = report_bits(serial.propagate());
        let report = got[i].outcome.as_ref().expect("valid scenario");
        assert_eq!(report_bits(report), want, "scenario {i} differs from serial");
    }
}

/// The backend identity is visible on every observability surface:
/// `counters()`, `perf_report()` (tracing on or off), and their names.
#[test]
fn backend_identity_is_reported_on_observability_surfaces() {
    let gen = GeneratorConfig::small("beq_obs", 67);
    let (_, _, mut g) = build(&gen, gaussian_cfg());
    assert_eq!(g.counters().stat_backend, StatBackendKind::GaussianPocv);
    assert_eq!(g.counters().stat_bins, 0);
    assert_eq!(g.counters().stat_backend.name(), "gaussian_pocv");
    // Tracing disabled: the perf report is empty but still names the
    // backend.
    assert_eq!(g.perf_report().stat_backend, StatBackendKind::GaussianPocv);

    let (_, _, mut h) = build(&gen, histogram_cfg(128));
    assert_eq!(h.counters().stat_backend, StatBackendKind::FixedBinHistogram);
    assert_eq!(h.counters().stat_bins, 128);
    assert_eq!(h.counters().stat_backend.name(), "fixed_bin_histogram");
    h.enable_tracing();
    h.propagate();
    let perf = h.perf_report();
    assert_eq!(perf.stat_backend, StatBackendKind::FixedBinHistogram);
    assert_eq!(perf.stat_bins, 128);
    let rendered = perf.to_string();
    assert!(
        rendered.contains("fixed_bin_histogram") && rendered.contains("128 bins"),
        "{rendered}"
    );
    g.propagate();
    let _ = g;
}
