//! Worker-panic isolation: a panicking data-parallel chunk must never
//! take the process down, and the serial re-execution fallback must
//! reproduce an undisturbed run bit-for-bit.
//!
//! The chaos hook (`insta_engine::parallel::chaos`) arms a deterministic
//! panic inside a specific kernel's workers at a specific timing level.
//! These tests share that global hook, so they serialize on a mutex.

use insta_engine::parallel::chaos;
use insta_engine::{InstaConfig, InstaEngine, InstaError, Kernel};
use insta_netlist::generator::{generate_design, GeneratorConfig};
use insta_refsta::{RefSta, StaConfig};
use std::sync::Mutex;

/// Serializes the chaos-armed tests (the hook is process-global).
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

/// A design whose levels are wide enough to cross the engine's parallel
/// dispatch threshold, with a clock tight enough for gradients to flow.
fn wide_init() -> insta_refsta::export::InstaInit {
    let mut cfg = GeneratorConfig::medium("fault", 9);
    cfg.gates_per_level = 600;
    cfg.logic_levels = 6;
    cfg.clock_period_ps = 360.0;
    let d = generate_design(&cfg);
    let mut sta = RefSta::new(&d, StaConfig::default()).expect("build");
    sta.full_update(&d);
    sta.export_insta_init()
}

fn engine(init: insta_refsta::export::InstaInit) -> InstaEngine {
    InstaEngine::new(
        init,
        InstaConfig {
            n_threads: 4,
            lse_tau: 0.5,
            ..InstaConfig::default()
        },
    )
    .expect("valid snapshot")
}

/// Runs `f` with the default panic hook silenced (worker panics are
/// expected here; their backtraces would drown the test output).
fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(hook);
    out
}

#[test]
fn forward_worker_panic_is_recovered_bit_identically() {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let init = wide_init();
    let mut healthy = engine(init.clone());
    let healthy_report = healthy.propagate().clone();
    assert!(healthy.last_incident().is_none());

    let mut faulty = engine(init);
    let level = 3; // a wide (parallel-dispatched) level
    with_quiet_panics(|| {
        chaos::arm(Kernel::Forward, level, false);
        let report = faulty.try_propagate().expect("recovered").clone();
        chaos::disarm();
        for (i, (a, b)) in healthy_report.slacks.iter().zip(&report.slacks).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "slack {i}: {a} vs {b}");
        }
        assert_eq!(healthy_report.tns_ps.to_bits(), report.tns_ps.to_bits());
    });
    let incident = faulty.last_incident().expect("incident recorded").clone();
    assert_eq!(incident.kernel, Kernel::Forward);
    assert_eq!(incident.level, level);
    assert!(!incident.serial_retry_failed);
    assert!(incident.message.contains("chaos"), "{}", incident.message);
    assert!(!incident.chunk.is_empty());

    // Arrivals too, not just the endpoint aggregation.
    for v in 0..healthy.num_nodes() as u32 {
        for rf in 0..2 {
            assert_eq!(
                healthy.arrival_at(v, rf).map(f64::to_bits),
                faulty.arrival_at(v, rf).map(f64::to_bits),
                "arrival at node {v} rf {rf}"
            );
        }
    }

    // The next undisturbed pass clears the incident.
    faulty.propagate();
    assert!(faulty.last_incident().is_none());
}

#[test]
fn lse_and_backward_worker_panics_are_recovered_bit_identically() {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let init = wide_init();
    let mut healthy = engine(init.clone());
    healthy.propagate();
    healthy.forward_lse();
    healthy.backward_tns();
    let healthy_grads = healthy.arc_gradients();

    let mut faulty = engine(init);
    faulty.propagate();
    with_quiet_panics(|| {
        chaos::arm(Kernel::ForwardLse, 2, false);
        faulty.try_forward_lse().expect("lse recovered");
        chaos::disarm();
    });
    let incident = faulty.last_incident().expect("lse incident").clone();
    assert_eq!(incident.kernel, Kernel::ForwardLse);
    assert_eq!(incident.level, 2);

    with_quiet_panics(|| {
        chaos::arm(Kernel::Backward, 2, false);
        faulty.try_backward_tns().expect("backward recovered");
        chaos::disarm();
    });
    let incident = faulty.last_incident().expect("backward incident").clone();
    assert_eq!(incident.kernel, Kernel::Backward);
    assert_eq!(incident.level, 2);

    let faulty_grads = faulty.arc_gradients();
    assert_eq!(healthy_grads.len(), faulty_grads.len());
    let mut nonzero = 0usize;
    for (i, (a, b)) in healthy_grads.iter().zip(&faulty_grads).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "gradient {i}: {a} vs {b}");
        if *a != 0.0 {
            nonzero += 1;
        }
    }
    assert!(nonzero > 0, "gradients must flow in this comparison");
}

#[test]
fn persistent_panic_fails_the_serial_retry_with_a_typed_error() {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let mut eng = engine(wide_init());
    let err = with_quiet_panics(|| {
        chaos::arm(Kernel::Forward, 3, true);
        let err = eng.try_propagate().expect_err("retry must fail too");
        chaos::disarm();
        err
    });
    match err {
        InstaError::Runtime(incident) => {
            assert_eq!(incident.kernel, Kernel::Forward);
            assert_eq!(incident.level, 3);
            assert!(incident.serial_retry_failed);
            assert!(incident.to_string().contains("also failed"));
        }
        other => panic!("expected Runtime, got {other}"),
    }
    // The engine recovers on the next clean pass.
    let report = eng.try_propagate().expect("clean pass").clone();
    assert!(!report.slacks.is_empty());
    assert!(eng.last_incident().is_none());
}

/// The bounded incident ring is lifetime history, unlike the per-pass
/// `last_incident`: recovered and fatal incidents accumulate, a clean pass
/// clears `last_incident` but not the ring, and past the ring capacity
/// evictions are counted rather than lost.
#[test]
fn incident_ring_outlives_passes_and_counts_evictions() {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let mut eng = engine(wide_init());
    eng.propagate();
    assert_eq!(eng.incident_log().total(), 0);

    // One recovered incident, then a clean pass: last_incident resets,
    // the ring keeps the history.
    with_quiet_panics(|| {
        chaos::arm(Kernel::Forward, 3, false);
        eng.try_propagate().expect("recovered");
        chaos::disarm();
    });
    eng.propagate();
    assert!(eng.last_incident().is_none());
    assert_eq!(eng.incident_log().total(), 1);
    assert!(!eng.incident_log().is_empty());
    assert_eq!(eng.incident_log().last_worker().expect("kept").kernel, Kernel::Forward);

    // A fatal (persistent) incident is recorded too.
    with_quiet_panics(|| {
        chaos::arm(Kernel::Forward, 3, true);
        eng.try_propagate().expect_err("retry must fail too");
        chaos::disarm();
    });
    assert_eq!(eng.incident_log().total(), 2);
    assert!(eng.incident_log().last_worker().expect("kept").serial_retry_failed);

    // Drive the ring past capacity: totals keep counting, length caps,
    // evictions are visible.
    let capacity = insta_engine::IncidentLog::CAPACITY as u64;
    with_quiet_panics(|| {
        for _ in 0..capacity {
            chaos::arm(Kernel::Forward, 3, false);
            eng.try_propagate().expect("recovered");
            chaos::disarm();
        }
    });
    let log = eng.incident_log();
    assert_eq!(log.total(), 2 + capacity);
    assert_eq!(log.len(), insta_engine::IncidentLog::CAPACITY);
    assert_eq!(log.dropped(), 2);
    assert!(log.workers().all(|i| i.kernel == Kernel::Forward));
}

/// Incident unification (ISSUE 5): with tracing enabled, every
/// `RuntimeIncident` the engine records is mirrored into the trace
/// journal as an `"incident"` event whose kernel/level payload matches
/// the incident ring entry, and the totals agree.
#[test]
fn incidents_are_mirrored_into_the_trace_journal() {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let mut eng = engine(wide_init());
    eng.enable_tracing();
    eng.propagate();

    with_quiet_panics(|| {
        chaos::arm(Kernel::Forward, 3, false);
        eng.try_propagate().expect("recovered");
        chaos::disarm();
        chaos::arm(Kernel::ForwardLse, 2, false);
        eng.try_forward_lse().expect("recovered");
        chaos::disarm();
        chaos::arm(Kernel::Backward, 2, false);
        eng.try_backward_tns().expect("recovered");
        chaos::disarm();
    });

    let log = eng.incident_log();
    assert_eq!(log.total(), 3);
    let journal = eng.trace_journal().expect("tracing enabled");
    let mirrored: Vec<_> = journal.events().filter(|e| e.name == "incident").collect();
    assert_eq!(mirrored.len() as u64, log.total(), "one event per incident");
    for (ev, inc) in mirrored.iter().zip(log.workers()) {
        assert_eq!(ev.field("level"), Some(inc.level as f64));
        assert_eq!(
            ev.field("serial_retry_failed"),
            Some(if inc.serial_retry_failed { 1.0 } else { 0.0 })
        );
        assert!(ev.instant);
    }
    // Kernel codes follow the forward(0) / lse(1) / backward(2) taxonomy.
    assert_eq!(mirrored[0].field("kernel"), Some(0.0));
    assert_eq!(mirrored[1].field("kernel"), Some(1.0));
    assert_eq!(mirrored[2].field("kernel"), Some(2.0));
    // Each mirrored incident sits inside its kernel-pass span: the spans
    // are journaled too (parents close after children, so the events
    // precede their spans in the ring).
    let names: Vec<&str> = journal.events().map(|e| e.name).collect();
    for pass in ["forward", "forward_lse", "backward"] {
        assert!(names.contains(&pass), "missing {pass} span in {names:?}");
    }
    // And the JSON-lines export carries them through.
    let jsonl = eng.export_trace_jsonl().expect("tracing enabled");
    assert_eq!(
        jsonl.lines().filter(|l| l.contains("\"incident\"")).count(),
        3
    );
}
