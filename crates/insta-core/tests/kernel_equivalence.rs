//! Differential kernel-equivalence suite: the rewritten forward kernels
//! (gather-then-merge SoA arenas, compare-exchange restore networks,
//! within-level CSR reordering, the fused evaluation + LSE sweep) must be
//! **bit-identical** to the frozen pre-overhaul scalar kernels retained in
//! `insta_engine::scalar_ref` — across Top-K capacities, thread counts
//! {1, 2, 8}, batch lanes {1, 16, 64}, tracing on/off, hold's min-merge,
//! and the gradient pipeline.
//!
//! Every comparison is on raw `f64::to_bits` — no tolerances anywhere.
//! A failure here means the production kernel changed the floats it
//! produces, which is a semantic regression by definition (see the
//! `scalar_ref` module docs).

use insta_engine::{hold_attributes, DeltaSet, InstaConfig, InstaEngine, InstaReport};
use insta_netlist::generator::{generate_design, GeneratorConfig};
use insta_netlist::Design;
use insta_refsta::eco::ArcDelta;
use insta_refsta::{RefSta, StaConfig};
use insta_support::rng::Rng;

const SUITE_SEED: u64 = 0x5CA1_A4EF;

fn build(gen: &GeneratorConfig, cfg: InstaConfig) -> (Design, RefSta, InstaEngine) {
    let design = generate_design(gen);
    let mut golden = RefSta::new(&design, StaConfig::default()).expect("build");
    golden.full_update(&design);
    let engine = InstaEngine::new(golden.export_insta_init(), cfg).expect("valid snapshot");
    (design, golden, engine)
}

/// A design wide enough that at least one level crosses the engine's
/// parallel threshold (512 nodes), so thread counts > 1 exercise the real
/// chunk-carving path rather than falling back to the serial branch.
fn wide_config(seed: u64) -> GeneratorConfig {
    GeneratorConfig {
        n_flops: 64,
        logic_levels: 3,
        gates_per_level: 900,
        ..GeneratorConfig::small("keq_wide", seed)
    }
}

fn topk_bits(e: &InstaEngine) -> Vec<u64> {
    let (a, m, s, sp) = e.topk_snapshot();
    let mut bits: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
    bits.extend(m.iter().map(|v| v.to_bits()));
    bits.extend(s.iter().map(|v| v.to_bits()));
    bits.extend(sp.iter().map(|&v| u64::from(v)));
    bits
}

fn lse_bits(e: &InstaEngine) -> Vec<u64> {
    let (a, w) = e.lse_snapshot();
    let mut bits: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
    bits.extend(w.iter().flat_map(|p| [p[0].to_bits(), p[1].to_bits()]));
    bits
}

fn grad_bits(e: &InstaEngine) -> Vec<u64> {
    let (ga, gc) = e.grad_snapshot();
    let mut bits: Vec<u64> = ga.iter().map(|v| v.to_bits()).collect();
    bits.extend(gc.iter().flat_map(|p| [p[0].to_bits(), p[1].to_bits()]));
    bits
}

fn report_bits(r: &InstaReport) -> Vec<u64> {
    let mut bits = vec![r.wns_ps.to_bits(), r.tns_ps.to_bits(), r.n_violations as u64];
    bits.extend(r.slacks.iter().map(|v| v.to_bits()));
    bits.extend(r.arrivals.iter().map(|v| v.to_bits()));
    bits.extend(r.requireds.iter().map(|v| v.to_bits()));
    bits.extend(r.worst_sp.iter().map(|&v| u64::from(v)));
    bits.extend(r.worst_rf.iter().map(|&v| v as u64));
    bits
}

/// The core pin: across Top-K capacities (including the compare-exchange
/// network sizes 2/4/8 and the insertion-restore sizes around them), the
/// production forward pass and the frozen scalar reference produce the
/// same Top-K arrays and the same endpoint report, bit for bit.
#[test]
fn forward_is_bit_identical_to_scalar_reference_across_k() {
    let gens = [
        GeneratorConfig::small("keq_small", 3),
        GeneratorConfig::small("keq_small", 11),
        GeneratorConfig::medium("keq_medium", 7),
    ];
    for gen in &gens {
        for k in [1usize, 2, 3, 4, 5, 8, 16] {
            let cfg = InstaConfig {
                top_k: k,
                ..InstaConfig::default()
            };
            let (_, _, mut fast) = build(gen, cfg.clone());
            let (_, _, mut reference) = build(gen, cfg);
            let got = report_bits(fast.propagate());
            let want = report_bits(reference.forward_scalar_reference());
            assert_eq!(got, want, "report differs (design {}, k={k})", gen.name);
            assert_eq!(
                topk_bits(&fast),
                topk_bits(&reference),
                "Top-K arrays differ (design {}, k={k})",
                gen.name
            );
        }
    }
}

/// Thread counts {1, 2, 8} over a design whose widest level crosses the
/// parallel threshold: chunk carving must not change a single bit.
#[test]
fn forward_is_bit_identical_across_thread_counts() {
    let gen = wide_config(5);
    let (_, _, mut reference) = build(&gen, InstaConfig::default());
    reference.forward_scalar_reference();
    let want = topk_bits(&reference);

    for n_threads in [1usize, 2, 8] {
        let cfg = InstaConfig {
            n_threads,
            ..InstaConfig::default()
        };
        let (_, _, mut fast) = build(&gen, cfg);
        fast.enable_tracing();
        fast.propagate();
        assert_eq!(
            topk_bits(&fast),
            want,
            "Top-K arrays differ at n_threads={n_threads}"
        );
        // Self-check the fixture: the design must actually exercise the
        // parallel path, or this test silently degrades to the serial one.
        let widest = fast
            .perf_report()
            .rows
            .iter()
            .map(|r| r.nodes)
            .max()
            .unwrap_or(0);
        assert!(
            widest >= 512,
            "fixture too narrow to exercise the parallel path ({widest} nodes)"
        );
    }
}

/// The fused evaluation + LSE sweep leaves exactly the state of
/// `propagate` followed by `forward_lse` — and both match the frozen
/// scalar references.
#[test]
fn fused_sweep_matches_separate_passes_and_scalar_reference() {
    for (gen, tau) in [
        (GeneratorConfig::small("keq_fused", 19), 8.0),
        (GeneratorConfig::medium("keq_fused_m", 23), 3.0),
    ] {
        let cfg = InstaConfig {
            lse_tau: tau,
            ..InstaConfig::default()
        };
        let (_, _, mut fused) = build(&gen, cfg.clone());
        let (_, _, mut separate) = build(&gen, cfg.clone());
        let (_, _, mut reference) = build(&gen, cfg);

        let fused_report = report_bits(fused.propagate_fused());
        let separate_report = report_bits(separate.propagate());
        separate.forward_lse();
        let reference_report = report_bits(reference.forward_scalar_reference());
        reference.forward_lse_scalar_reference();

        assert_eq!(fused_report, separate_report, "{}: fused report", gen.name);
        assert_eq!(separate_report, reference_report, "{}: report", gen.name);
        assert_eq!(topk_bits(&fused), topk_bits(&separate), "{}: fused topk", gen.name);
        assert_eq!(topk_bits(&separate), topk_bits(&reference), "{}: topk", gen.name);
        assert_eq!(lse_bits(&fused), lse_bits(&separate), "{}: fused lse", gen.name);
        assert_eq!(lse_bits(&separate), lse_bits(&reference), "{}: lse", gen.name);
    }
}

/// Tracing instruments the kernels (span records, per-level timestamp
/// reads); it must not perturb one bit of what they compute.
#[test]
fn tracing_does_not_perturb_the_kernels() {
    let gen = GeneratorConfig::medium("keq_trace", 29);
    let (_, _, mut traced) = build(&gen, InstaConfig::default());
    let (_, _, mut plain) = build(&gen, InstaConfig::default());
    traced.enable_tracing();
    let got = report_bits(traced.propagate_fused());
    let want = report_bits(plain.propagate_fused());
    assert_eq!(got, want, "tracing changed the report");
    assert_eq!(topk_bits(&traced), topk_bits(&plain), "tracing changed topk");
    assert_eq!(lse_bits(&traced), lse_bits(&plain), "tracing changed lse");
}

/// Hold's min-merge rides the same rewritten kernel through corner
/// negation; it must match the frozen pre-overhaul `min_level_chunk`.
#[test]
fn hold_min_merge_is_bit_identical_to_scalar_reference() {
    for seed in [13u64, 37] {
        let gen = GeneratorConfig::small("keq_hold", seed);
        let (design, golden, mut fast) = build(&gen, InstaConfig::default());
        let (_, _, mut reference) = build(&gen, InstaConfig::default());
        let attrs = hold_attributes(&design, &golden);
        let got = report_bits(&fast.propagate_hold(&attrs));
        let want = report_bits(&reference.hold_scalar_reference(&attrs));
        assert_eq!(got, want, "hold report differs (seed {seed})");
        assert_eq!(
            topk_bits(&fast),
            topk_bits(&reference),
            "min-mode Top-K arrays differ (seed {seed})"
        );
    }
}

/// The gradient pipeline consumes the LSE buffers: running the backward
/// kernel on top of the production LSE pass and on top of the scalar
/// reference LSE pass must produce identical gradients.
#[test]
fn gradients_are_bit_identical_through_the_scalar_reference() {
    let gen = GeneratorConfig::medium("keq_grad", 41);
    let (_, _, mut fast) = build(&gen, InstaConfig::default());
    let (_, _, mut reference) = build(&gen, InstaConfig::default());

    fast.propagate();
    fast.forward_lse();
    fast.backward_tns();

    reference.forward_scalar_reference();
    reference.forward_lse_scalar_reference();
    reference.backward_tns();

    assert_eq!(grad_bits(&fast), grad_bits(&reference), "gradients differ");
    assert_eq!(
        fast.arc_gradients()
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        reference
            .arc_gradients()
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        "accumulated arc gradients differ"
    );
}

/// Random valid delta sets jittered off the golden delays (duplicates and
/// empty sets included), as in the batch-equivalence suite.
fn random_scenarios(golden: &RefSta, rng: &mut Rng, s: usize) -> Vec<DeltaSet> {
    let delays = golden.delays();
    let n_arcs = delays.mean.len() as u64;
    (0..s)
        .map(|_| {
            let len = rng.bounded_u64(6) as usize;
            let deltas = (0..len)
                .map(|_| {
                    let arc = rng.bounded_u64(n_arcs) as u32;
                    let mean = delays.mean[arc as usize];
                    let sigma = delays.sigma[arc as usize];
                    ArcDelta {
                        arc,
                        mean: [
                            mean[0] + rng.next_f64() * 20.0 - 10.0,
                            mean[1] + rng.next_f64() * 20.0 - 10.0,
                        ],
                        sigma: [
                            sigma[0] * (1.0 + rng.next_f64()),
                            sigma[1] * (1.0 + rng.next_f64()),
                        ],
                    }
                })
                .collect();
            DeltaSet { deltas }
        })
        .collect()
}

/// Batch lanes {1, 16, 64}: every scenario of a batched sweep must match
/// re-annotating a clone and running the frozen scalar forward pass —
/// pinning the lane-sliced merge closures to the reference kernel without
/// going through the production serial path at all.
#[test]
fn batch_lanes_are_bit_identical_to_the_scalar_reference() {
    for lanes in [1usize, 16, 64] {
        let gen = GeneratorConfig::small("keq_batch", 47);
        let (_, golden, mut engine) = build(&gen, InstaConfig::default());
        engine.propagate();
        let mut rng = Rng::seed_from_u64(SUITE_SEED ^ lanes as u64);
        let scenarios = random_scenarios(&golden, &mut rng, lanes);

        let got = engine.evaluate_batch(&scenarios);
        assert_eq!(got.len(), lanes);
        for (i, sc) in scenarios.iter().enumerate() {
            let mut reference = engine.clone();
            reference.reannotate(&sc.deltas).expect("valid deltas");
            let want = report_bits(reference.forward_scalar_reference());
            let report = got[i].outcome.as_ref().expect("valid scenario");
            assert_eq!(
                report_bits(report),
                want,
                "scenario {i} of {lanes} differs from the scalar reference"
            );
        }
    }
}

/// Incremental re-annotation feeds the same kernels: after an ECO-style
/// delta, the production pass and the scalar reference still agree.
#[test]
fn reannotated_forward_matches_scalar_reference() {
    let gen = GeneratorConfig::small("keq_eco", 53);
    let (_, golden, mut fast) = build(&gen, InstaConfig::default());
    let (_, _, mut reference) = build(&gen, InstaConfig::default());
    let mut rng = Rng::seed_from_u64(SUITE_SEED ^ 0xEC0);
    let deltas = random_scenarios(&golden, &mut rng, 1).remove(0).deltas;

    fast.reannotate(&deltas).expect("valid deltas");
    reference.reannotate(&deltas).expect("valid deltas");
    let got = report_bits(fast.propagate());
    let want = report_bits(reference.forward_scalar_reference());
    assert_eq!(got, want, "post-reannotation report differs");
    assert_eq!(topk_bits(&fast), topk_bits(&reference));
}
