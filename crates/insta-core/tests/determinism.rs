//! Serial vs multi-threaded determinism.
//!
//! The scoped-thread kernels split each level's output slice into disjoint
//! chunks whose per-node computations read only the immutable `done`
//! prefix, so thread count must never change a single bit of the results.
//! These tests pin that contract on a design wide enough
//! (`gates_per_level` > `PAR_THRESHOLD`) to actually exercise the
//! multi-threaded path.

use insta_engine::{InstaConfig, InstaEngine};
use insta_netlist::generator::{generate_design, GeneratorConfig};
use insta_refsta::{RefSta, StaConfig};

/// A design whose levels are wide enough to cross the engine's parallel
/// dispatch threshold (512 nodes per level).
fn wide_init() -> insta_refsta::export::InstaInit {
    let mut cfg = GeneratorConfig::medium("det", 3);
    cfg.gates_per_level = 600;
    cfg.logic_levels = 6;
    // Tight enough that several endpoints violate, so backward_tns has a
    // nonzero gradient field to compare.
    cfg.clock_period_ps = 360.0;
    let d = generate_design(&cfg);
    let mut sta = RefSta::new(&d, StaConfig::default()).expect("build");
    sta.full_update(&d);
    sta.export_insta_init()
}

fn engine(init: insta_refsta::export::InstaInit, n_threads: usize) -> InstaEngine {
    InstaEngine::new(
        init,
        InstaConfig {
            n_threads,
            lse_tau: 0.5,
            ..InstaConfig::default()
        },
    ).expect("valid snapshot")
}

#[test]
fn forward_backward_results_are_bit_identical_across_thread_counts() {
    let init = wide_init();
    let mut serial = engine(init.clone(), 1);
    let mut parallel = engine(init, 4);

    // Evaluation forward pass: arrivals and endpoint slacks.
    let rs = serial.propagate().clone();
    let rp = parallel.propagate().clone();
    assert_eq!(rs.slacks.len(), rp.slacks.len());
    assert!(!rs.slacks.is_empty());
    for (i, (a, b)) in rs.slacks.iter().zip(&rp.slacks).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "slack {i}: {a} vs {b}");
    }
    assert_eq!(rs.wns_ps.to_bits(), rp.wns_ps.to_bits());
    assert_eq!(rs.tns_ps.to_bits(), rp.tns_ps.to_bits());
    assert_eq!(rs.n_violations, rp.n_violations);
    for v in 0..serial.num_nodes() as u32 {
        for rf in 0..2 {
            let a = serial.arrival_at(v, rf);
            let b = parallel.arrival_at(v, rf);
            assert_eq!(
                a.map(f64::to_bits),
                b.map(f64::to_bits),
                "arrival at node {v} rf {rf}: {a:?} vs {b:?}"
            );
        }
    }

    // Differentiable forward + backward: gradients.
    serial.forward_lse();
    parallel.forward_lse();
    serial.backward_tns();
    parallel.backward_tns();
    let gs = serial.arc_gradients();
    let gp = parallel.arc_gradients();
    assert_eq!(gs.len(), gp.len());
    let mut nonzero = 0usize;
    for (i, (a, b)) in gs.iter().zip(&gp).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "gradient {i}: {a} vs {b}");
        if *a != 0.0 {
            nonzero += 1;
        }
    }
    assert!(nonzero > 0, "backward pass must produce gradients");
}

/// Tracing is observation-only: every numeric result — arrivals, slacks,
/// gradients — must be bit-identical with the span recorder on and off
/// (ISSUE 5 overhead contract).
#[test]
fn tracing_on_and_off_are_bit_identical() {
    let init = wide_init();
    let mut plain = engine(init.clone(), 4);
    let mut traced = engine(init, 4);
    traced.enable_tracing();

    let rp = plain.propagate().clone();
    let rt = traced.propagate().clone();
    for (i, (a, b)) in rp.slacks.iter().zip(&rt.slacks).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "slack {i}: {a} vs {b}");
    }
    assert_eq!(rp.wns_ps.to_bits(), rt.wns_ps.to_bits());
    assert_eq!(rp.tns_ps.to_bits(), rt.tns_ps.to_bits());
    for v in 0..plain.num_nodes() as u32 {
        for rf in 0..2 {
            assert_eq!(
                plain.arrival_at(v, rf).map(f64::to_bits),
                traced.arrival_at(v, rf).map(f64::to_bits),
                "arrival at node {v} rf {rf}"
            );
        }
    }

    plain.forward_lse();
    traced.forward_lse();
    plain.backward_tns();
    traced.backward_tns();
    let gp = plain.arc_gradients();
    let gt = traced.arc_gradients();
    for (i, (a, b)) in gp.iter().zip(&gt).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "gradient {i}: {a} vs {b}");
    }

    // The traced engine actually observed the passes it ran.
    let report = traced.perf_report();
    assert!(!report.is_empty());
    assert_eq!(report.forward_passes, 1);
    assert_eq!(report.lse_passes, 1);
    assert_eq!(report.backward_passes, 1);
    assert!(traced.trace_journal().is_some_and(|j| j.len() >= 3));
    assert!(plain.trace_journal().is_none());
}

#[test]
fn thread_count_zero_matches_explicit_counts() {
    let init = wide_init();
    let mut auto = engine(init.clone(), 0); // all cores
    let mut two = engine(init, 2);
    let ra = auto.propagate().clone();
    let rb = two.propagate().clone();
    for (a, b) in ra.slacks.iter().zip(&rb.slacks) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
