//! §III-E ablation: the paper's fixed-size sorted list versus a
//! heap-backed priority queue for Top-K unique-startpoint maintenance.
//!
//! The paper argues heaps are a poor fit for per-thread Top-K maintenance;
//! this bench shows the flat O(K²) list also wins on CPUs for the small K
//! the algorithm uses, because the heap variant needs an auxiliary
//! startpoint index plus lazy-deletion housekeeping.

use insta_engine::topk::{Candidate, TopKQueue};
use insta_support::timer::{black_box, Harness};
use insta_support::Rng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Heap-based alternative: a min-heap over order-preserving arrival bits
/// plus a per-startpoint best map with lazy deletion.
struct HeapTopK {
    k: usize,
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    best: HashMap<u32, u64>,
}

/// Order-preserving bit transform for non-negative f64 arrivals.
fn key(a: f64) -> u64 {
    a.to_bits()
}

impl HeapTopK {
    fn new(k: usize) -> Self {
        Self {
            k,
            heap: BinaryHeap::with_capacity(2 * k),
            best: HashMap::with_capacity(2 * k),
        }
    }

    fn push(&mut self, arrival: f64, sp: u32) {
        let a = key(arrival);
        match self.best.get(&sp) {
            Some(&cur) if a <= cur => return,
            _ => {}
        }
        self.best.insert(sp, a);
        self.heap.push(Reverse((a, sp)));
        while self.live_len() > self.k {
            let Some(Reverse((a, sp))) = self.heap.pop() else {
                break;
            };
            if self.best.get(&sp) == Some(&a) {
                self.best.remove(&sp);
            }
        }
    }

    /// Number of live entries, dropping stale heads so `pop` removes a
    /// live minimum next.
    fn live_len(&mut self) -> usize {
        while let Some(&Reverse((a, sp))) = self.heap.peek() {
            if self.best.get(&sp) == Some(&a) {
                break;
            }
            self.heap.pop();
        }
        self.best.len()
    }

    fn top(&self) -> Option<f64> {
        self.best.values().copied().max().map(f64::from_bits)
    }
}

fn main() {
    let mut rng = Rng::seed_from_u64(5);
    let cands: Vec<(f64, u32)> = (0..4096)
        .map(|_| (rng.gen_range(0.0f64..1000.0), rng.gen_range(0u32..96)))
        .collect();

    let mut h = Harness::new("ablation_topk_queue");
    for k in [8usize, 32, 128] {
        h.bench(format!("fixed_list/k={k}"), || {
            let mut q = TopKQueue::new(k);
            for &(a, sp) in &cands {
                q.push(Candidate {
                    arrival: a,
                    mean: a,
                    sigma: 0.0,
                    sp,
                });
            }
            black_box(q.top().map(|c| c.arrival))
        });
        h.bench(format!("binary_heap/k={k}"), || {
            let mut q = HeapTopK::new(k);
            for &(a, sp) in &cands {
                q.push(a, sp);
            }
            black_box(q.top())
        });
    }
    h.finish();
}
