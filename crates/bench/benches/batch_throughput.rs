//! Batch-throughput bench: S=16 what-if scenarios evaluated in one
//! `evaluate_batch` call vs S sequential transactional sessions.
//!
//! The batched path shares one synced base propagation across all
//! scenarios and recomputes only inside each scenario's dirty fanout
//! cone, so it should beat S full session round-trips by a wide margin.
//! Emits one machine-readable JSON line after the human table and exits
//! non-zero when the speedup falls below the gate (acceptance: ≥ 5× at
//! S=16 since the compact-slot ScenarioBatch landed). Drift auditing is
//! disabled so neither path degrades to the other.

use insta_bench::block_specs;
use insta_engine::{DeltaSet, DriftPolicy, InstaConfig, InstaEngine};
use insta_refsta::{estimate_eco, RefSta, StaConfig};
use insta_sizer::random_changelist;
use insta_support::json::{obj, Json};
use insta_support::timer::{black_box, Harness};

const SCENARIOS: usize = 16;

/// Minimum accepted batch-vs-sequential speedup. The compact-slot
/// `ScenarioBatch` layout measures ~12× here; 5× leaves headroom for
/// machine variance while still catching a dense-allocation regression
/// (which lands near 3×).
const GATE_MIN_SPEEDUP: f64 = 5.0;

fn main() {
    let spec = &block_specs()[4]; // block-5
    let design = spec.build();
    let ops = random_changelist(&design, SCENARIOS, 9);
    let mut sta = RefSta::new(&design, StaConfig::default()).expect("build");
    sta.full_update(&design);
    let mut engine = InstaEngine::new(
        sta.export_insta_init(),
        InstaConfig {
            top_k: 8,
            drift_policy: DriftPolicy::unlimited(),
            ..InstaConfig::default()
        },
    )
    .expect("valid snapshot");
    engine.propagate();

    // Each scenario is one cell-resize what-if: the estimated ECO deltas
    // for a different random resize, evaluated without touching the
    // design (exactly the sizer's candidate-scoring pattern).
    let scenarios: Vec<DeltaSet> = ops
        .iter()
        .map(|op| DeltaSet::from(estimate_eco(&design, &sta, op.cell, op.to).arc_deltas))
        .collect();

    let mut h = Harness::new("batch_throughput");
    h.bench("sequential_sessions", || {
        let mut tns = 0.0;
        for set in &scenarios {
            let mut session = engine.begin_session();
            tns += session.update_timing(&set.deltas).expect("valid batch").tns_ps;
            session.rollback();
        }
        black_box(tns)
    });
    engine.propagate(); // resync the base before the batched path
    h.bench("evaluate_batch", || {
        let tns: f64 = engine
            .evaluate_batch(&scenarios)
            .iter()
            .map(|r| r.outcome.as_ref().expect("valid batch").tns_ps)
            .sum();
        black_box(tns)
    });
    let results = h.finish();

    let mean_ns = |name: &str| {
        results
            .iter()
            .find(|m| m.name == name)
            .map_or(0.0, |m| m.mean.as_secs_f64() * 1e9)
    };
    let sequential = mean_ns("sequential_sessions");
    let batch = mean_ns("evaluate_batch");
    let speedup = if batch > 0.0 { sequential / batch } else { 0.0 };
    println!(
        "{}",
        obj([
            ("suite", Json::Str("batch_throughput".into())),
            ("block", Json::Str(spec.name.into())),
            ("scenarios", Json::Num(SCENARIOS as f64)),
            ("sequential_ns", Json::Num(sequential)),
            ("batch_ns", Json::Num(batch)),
            ("speedup_x", Json::Num(speedup)),
            ("gate_min_speedup_x", Json::Num(GATE_MIN_SPEEDUP)),
        ])
    );
    if speedup < GATE_MIN_SPEEDUP {
        eprintln!("batch_throughput: speedup {speedup:.2}x below the {GATE_MIN_SPEEDUP}x gate");
        std::process::exit(1);
    }
}
