//! Fig. 7 bench: the per-iteration cost of the three sizing-flow
//! evaluators on one committed resize.

use insta_bench::block_specs;
use insta_engine::{InstaConfig, InstaEngine};
use insta_refsta::{estimate_eco, RefSta, StaConfig};
use insta_sizer::random_changelist;
use insta_support::timer::{black_box, Harness};

fn main() {
    let spec = &block_specs()[4]; // block-5
    let mut design = spec.build();
    let op = random_changelist(&design, 1, 9)[0];
    let mut full = RefSta::new(&design, StaConfig::default()).expect("build");
    let mut incr = RefSta::new(&design, StaConfig::default()).expect("build");
    full.full_update(&design);
    incr.full_update(&design);
    let mut engine = InstaEngine::new(
        incr.export_insta_init(),
        InstaConfig {
            top_k: 8,
            ..InstaConfig::default()
        },
    ).expect("valid snapshot");
    engine.propagate();
    let est = estimate_eco(&design, &incr, op.cell, op.to);
    design.resize_cell(op.cell, op.to);

    let mut h = Harness::new("fig7_per_iteration");
    h.bench("reference_full", || {
        black_box(full.full_update(&design).tns_ps)
    });
    h.bench("reference_incremental", || {
        black_box(incr.incremental_update(&design, &[op.cell]).tns_ps)
    });
    h.bench("insta_reannotate_propagate", || {
        black_box(
            engine
                .update_timing(&est.arc_deltas)
                .expect("in-range deltas")
                .tns_ps,
        )
    });
    h.finish();
}
