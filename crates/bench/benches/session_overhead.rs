//! Session-overhead bench: the transactional update (commit and rollback
//! paths) vs the plain incremental update on the same delta batch.
//!
//! Emits one machine-readable JSON line after the human table so CI can
//! gate the commit-path overhead (acceptance: ≤ 10 % over plain
//! `update_timing`). Drift auditing is disabled so every path measures the
//! same propagation work.

use insta_bench::block_specs;
use insta_engine::{DriftPolicy, InstaConfig, InstaEngine};
use insta_refsta::{estimate_eco, RefSta, StaConfig};
use insta_sizer::random_changelist;
use insta_support::json::{obj, Json};
use insta_support::timer::{black_box, Harness};

fn main() {
    let spec = &block_specs()[4]; // block-5
    let mut design = spec.build();
    let op = random_changelist(&design, 1, 9)[0];
    let mut sta = RefSta::new(&design, StaConfig::default()).expect("build");
    sta.full_update(&design);
    let mut engine = InstaEngine::new(
        sta.export_insta_init(),
        InstaConfig {
            top_k: 8,
            drift_policy: DriftPolicy::unlimited(),
            ..InstaConfig::default()
        },
    )
    .expect("valid snapshot");
    engine.propagate();
    let est = estimate_eco(&design, &sta, op.cell, op.to);
    design.resize_cell(op.cell, op.to);
    let deltas = est.arc_deltas;

    let mut h = Harness::new("session_overhead");
    h.bench("plain_update_timing", || {
        black_box(engine.update_timing(&deltas).expect("valid batch").tns_ps)
    });
    h.bench("session_update_commit", || {
        let mut session = engine.begin_session();
        let tns = session.update_timing(&deltas).expect("valid batch").tns_ps;
        session.commit().expect("session is open");
        black_box(tns)
    });
    h.bench("session_update_rollback", || {
        let mut session = engine.begin_session();
        let tns = session.update_timing(&deltas).expect("valid batch").tns_ps;
        session.rollback();
        black_box(tns)
    });
    let results = h.finish();

    let mean_ns = |name: &str| {
        results
            .iter()
            .find(|m| m.name == name)
            .map_or(0.0, |m| m.mean.as_secs_f64() * 1e9)
    };
    let plain = mean_ns("plain_update_timing");
    let commit = mean_ns("session_update_commit");
    let rollback = mean_ns("session_update_rollback");
    let overhead_pct = if plain > 0.0 {
        (commit - plain) / plain * 100.0
    } else {
        0.0
    };
    println!(
        "{}",
        obj([
            ("suite", Json::Str("session_overhead".into())),
            ("block", Json::Str(spec.name.into())),
            ("plain_update_ns", Json::Num(plain)),
            ("session_commit_ns", Json::Num(commit)),
            ("session_rollback_ns", Json::Num(rollback)),
            ("commit_overhead_pct", Json::Num(overhead_pct)),
        ])
    );
}
