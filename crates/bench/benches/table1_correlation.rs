//! Table I bench: reference full update vs INSTA propagation on one block
//! (the `UT` and `runtime` columns).

use criterion::{criterion_group, criterion_main, Criterion};
use insta_bench::block_specs;
use insta_engine::{InstaConfig, InstaEngine};
use insta_refsta::{RefSta, StaConfig};

fn bench_table1(c: &mut Criterion) {
    let spec = &block_specs()[4]; // block-5
    let design = spec.build();
    let mut golden = RefSta::new(&design, StaConfig::default()).expect("build");
    golden.full_update(&design);
    let init = golden.export_insta_init();
    let mut engine = InstaEngine::new(init, InstaConfig::default());

    let mut group = c.benchmark_group("table1_block5");
    group.sample_size(10);
    group.bench_function("reference_full_update", |b| {
        b.iter(|| std::hint::black_box(golden.full_update(&design).tns_ps))
    });
    group.bench_function("insta_propagate_k32", |b| {
        b.iter(|| {
            engine.propagate();
            std::hint::black_box(engine.report().tns_ps)
        })
    });
    group.bench_function("insta_gradient_backward", |b| {
        engine.propagate();
        engine.forward_lse();
        b.iter(|| {
            engine.backward_tns();
            std::hint::black_box(engine.arc_gradients().len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
