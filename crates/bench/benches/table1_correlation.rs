//! Table I bench: reference full update vs INSTA propagation on one block
//! (the `UT` and `runtime` columns).

use insta_bench::block_specs;
use insta_engine::{InstaConfig, InstaEngine};
use insta_refsta::{RefSta, StaConfig};
use insta_support::timer::{black_box, Harness};

fn main() {
    let spec = &block_specs()[4]; // block-5
    let design = spec.build();
    let mut golden = RefSta::new(&design, StaConfig::default()).expect("build");
    golden.full_update(&design);
    let init = golden.export_insta_init();
    let mut engine = InstaEngine::new(init, InstaConfig::default()).expect("valid snapshot");

    let mut h = Harness::new("table1_block5");
    h.bench("reference_full_update", || {
        black_box(golden.full_update(&design).tns_ps)
    });
    h.bench("insta_propagate_k32", || {
        engine.propagate();
        black_box(engine.report().tns_ps)
    });
    engine.propagate();
    engine.forward_lse();
    h.bench("insta_gradient_backward", || {
        engine.backward_tns();
        black_box(engine.arc_gradients().len())
    });
    h.finish();
}
