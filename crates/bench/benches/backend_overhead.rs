//! Backend-overhead gate: the `StatModel` trait seam must be free.
//!
//! The kernels reach every numeric operation through a monomorphized
//! `StatModel` parameter. Selecting the Gaussian POCV backend must
//! therefore compile to exactly the pre-refactor kernels — not "close",
//! but with no measurable abstraction cost. This bench measures the
//! trait-generic Gaussian forward pass on the same fast-budget workload
//! as `fig9_breakdown` so CI can hold it to a *tighter* multiplier of
//! the same `forward_ns` floor (1.05x vs the kernel gate's 1.15x).
//!
//! The histogram backend's forward time is reported alongside for
//! context; it is informational, not gated — a discretized CDF walk is
//! allowed to cost more than a closed-form corner.
//!
//! Prints one machine-readable JSON line last (CI tees it).

use insta_bench::block_specs;
use insta_engine::{InstaConfig, InstaEngine, StatModelConfig};
use insta_refsta::{RefSta, StaConfig};
use insta_support::json::{obj, Json};
use insta_support::timer::black_box;

fn forward_ns(init: insta_refsta::export::InstaInit, cfg: InstaConfig, passes: usize) -> u64 {
    let mut engine = InstaEngine::new(init, cfg).expect("valid snapshot");
    engine.enable_tracing();
    for _ in 0..passes {
        black_box(engine.propagate_fused().tns_ps);
        engine.backward_tns();
    }
    let (forward, _, _) = engine.perf_report().totals_ns();
    forward
}

fn main() {
    let fast = std::env::var_os("INSTA_BENCH_FAST").is_some();
    let spec = &block_specs()[if fast { 0 } else { 4 }];
    let design = spec.build();
    let mut sta = RefSta::new(&design, StaConfig::default()).expect("build");
    sta.full_update(&design);
    let init = sta.export_insta_init();
    let passes = if fast { 3 } else { 25 };

    let base = InstaConfig {
        top_k: 8,
        ..InstaConfig::default()
    };
    let gaussian_ns = forward_ns(init.clone(), base.clone(), passes);
    let histogram_ns = forward_ns(
        init,
        InstaConfig {
            stat_model: StatModelConfig::FixedBinHistogram {
                bins: 64,
                support_sigmas: 6.0,
            },
            ..base
        },
        passes,
    );

    println!(
        "backend_overhead: gaussian forward {gaussian_ns} ns, histogram(64) forward {histogram_ns} ns over {passes} passes on {}",
        spec.name
    );
    println!(
        "{}",
        obj([
            ("suite", Json::Str("backend_overhead".into())),
            ("block", Json::Str(spec.name.into())),
            ("passes", Json::Num(passes as f64)),
            ("forward_ns", Json::Num(gaussian_ns as f64)),
            ("histogram_forward_ns", Json::Num(histogram_ns as f64)),
        ])
    );
}
