//! Service-layer throughput bench: per-request `report_slack` latency
//! through the full protocol stack (framing, dispatch, snapshot clone),
//! measured idle and then with a hot writer committing epochs as fast as
//! it can.
//!
//! The MVCC acceptance gate: an active writer may not block readers —
//! p99 read latency with the writer hot must stay within 2× of idle p99
//! (or a small absolute floor on noisy boxes, whichever is larger). A
//! read path that takes the writer's lock fails this by an order of
//! magnitude. Emits one machine-readable JSON line after the human
//! summary and exits non-zero when the gate fails across all attempts.

use insta_engine::{InstaConfig, InstaEngine};
use insta_netlist::generator::{generate_design, GeneratorConfig};
use insta_refsta::{RefSta, StaConfig};
use insta_serve::{Client, Op, ServeConfig, Server};
use insta_support::json::{obj, Json, ToJson};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Per-attempt gate: p99 under write pressure vs idle.
const GATE_RATIO: f64 = 2.0;
/// Absolute floor (µs): below this, scheduler noise dominates and the
/// ratio is meaningless.
const GATE_FLOOR_US: f64 = 5_000.0;
/// Noise retries, same policy as the fig9 gate.
const ATTEMPTS: usize = 3;

fn build_server() -> Server {
    let design = generate_design(&GeneratorConfig::small("serve-bench", 77));
    let mut sta = RefSta::new(&design, StaConfig::default()).expect("reference STA");
    sta.full_update(&design);
    let mut engine = InstaEngine::new(
        sta.export_insta_init(),
        InstaConfig {
            top_k: 8,
            ..InstaConfig::default()
        },
    )
    .expect("engine init");
    engine.propagate();
    Server::new(engine, ServeConfig::default())
}

fn connect(server: &Server) -> (Client<UnixStream, UnixStream>, std::thread::JoinHandle<()>) {
    let (ours, theirs) = UnixStream::pair().expect("socketpair");
    let srv = server.clone();
    let h = std::thread::spawn(move || {
        let r = theirs.try_clone().expect("clone");
        srv.handle_connection(r, theirs);
    });
    (Client::new(ours.try_clone().expect("clone"), ours), h)
}

/// Runs `reads` protocol round-trips, returning sorted latencies in µs.
fn read_phase(server: &Server, reads: usize) -> Vec<f64> {
    let (mut cl, h) = connect(server);
    let mut lat = Vec::with_capacity(reads);
    for _ in 0..reads {
        let t = Instant::now();
        let r = cl
            .call(Op::ReportSlack, None, Json::Null)
            .expect("read round-trip");
        assert!(r.ok, "{:?}", r.error);
        lat.push(t.elapsed().as_secs_f64() * 1e6);
    }
    drop(cl);
    h.join().expect("connection thread");
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    lat
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct Attempt {
    p50_idle: f64,
    p99_idle: f64,
    qps_idle: f64,
    p50_active: f64,
    p99_active: f64,
    qps_active: f64,
    commits: u64,
    pass: bool,
}

fn run_attempt(reads: usize) -> Attempt {
    let server = build_server();

    let idle = read_phase(&server, reads);
    let qps_idle = reads as f64 / (idle.iter().sum::<f64>() / 1e6).max(1e-9);

    // Hot writer: commit epochs flat-out on its own connection while the
    // read phase repeats.
    let stop = Arc::new(AtomicBool::new(false));
    let (mut wcl, wh) = connect(&server);
    let wstop = Arc::clone(&stop);
    let writer = std::thread::spawn(move || {
        let mut commits = 0u64;
        let mut flip = false;
        while !wstop.load(Ordering::Relaxed) {
            flip = !flip;
            let mean = if flip { 30.0 } else { 10.0 };
            let params = obj([(
                "deltas",
                Json::Arr(vec![obj([
                    ("arc", 0_u64.to_json()),
                    ("mean", Json::Arr(vec![mean.to_json(), mean.to_json()])),
                    ("sigma", Json::Arr(vec![2.0.to_json(), 2.0.to_json()])),
                ])]),
            )]);
            let r = wcl.call(Op::Update, None, params).expect("writer");
            assert!(r.ok, "{:?}", r.error);
            commits += 1;
        }
        (wcl, commits)
    });

    let active = read_phase(&server, reads);
    let qps_active = reads as f64 / (active.iter().sum::<f64>() / 1e6).max(1e-9);
    stop.store(true, Ordering::Relaxed);
    let (wcl, commits) = writer.join().expect("writer thread");
    drop(wcl);
    wh.join().expect("writer connection");

    let p99_idle = percentile(&idle, 0.99);
    let p99_active = percentile(&active, 0.99);
    let pass = p99_active <= (GATE_RATIO * p99_idle).max(GATE_FLOOR_US);
    Attempt {
        p50_idle: percentile(&idle, 0.50),
        p99_idle,
        qps_idle,
        p50_active: percentile(&active, 0.50),
        p99_active,
        qps_active,
        commits,
        pass,
    }
}

fn main() {
    let fast = std::env::var_os("INSTA_BENCH_FAST").is_some();
    let reads = if fast { 400 } else { 4000 };

    let mut last = None;
    let mut passed = false;
    for attempt in 1..=ATTEMPTS {
        let a = run_attempt(reads);
        eprintln!(
            "serve_throughput attempt {attempt}: idle p50 {:.0}us p99 {:.0}us ({:.0} q/s) | \
             writer-active p50 {:.0}us p99 {:.0}us ({:.0} q/s), {} commits | {}",
            a.p50_idle,
            a.p99_idle,
            a.qps_idle,
            a.p50_active,
            a.p99_active,
            a.qps_active,
            a.commits,
            if a.pass { "PASS" } else { "RETRY" },
        );
        let ok = a.pass;
        last = Some(a);
        if ok {
            passed = true;
            break;
        }
    }
    let a = last.expect("at least one attempt");
    println!(
        "{}",
        obj([
            ("suite", Json::Str("serve_throughput".into())),
            ("reads", Json::Num(reads as f64)),
            ("p50_idle_us", Json::Num(a.p50_idle)),
            ("p99_idle_us", Json::Num(a.p99_idle)),
            ("qps_idle", Json::Num(a.qps_idle)),
            ("p50_active_us", Json::Num(a.p50_active)),
            ("p99_active_us", Json::Num(a.p99_active)),
            ("qps_active", Json::Num(a.qps_active)),
            ("writer_commits", Json::Num(a.commits as f64)),
            ("gate_ratio", Json::Num(GATE_RATIO)),
            ("gate_floor_us", Json::Num(GATE_FLOOR_US)),
            ("pass", Json::Bool(passed)),
        ])
    );
    if !passed {
        eprintln!(
            "serve_throughput: writer-active p99 {:.0}us exceeds max({GATE_RATIO} x idle p99 \
             {:.0}us, {GATE_FLOOR_US:.0}us) after {ATTEMPTS} attempts",
            a.p99_active, a.p99_idle
        );
        std::process::exit(1);
    }
}
