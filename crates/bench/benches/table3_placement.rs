//! Table III bench: a short placement run per mode (relative cost of the
//! three placers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use insta_netlist::generator::{generate_design, GeneratorConfig};
use insta_placer::{place, PlacerConfig, PlacerMode};

fn bench_placers(c: &mut Criterion) {
    let mut gen = GeneratorConfig::medium("bench_place", 15);
    gen.clock_period_ps = 1500.0;
    gen.uniform_endpoint_taps = true;

    let mut group = c.benchmark_group("table3_placement_modes");
    group.sample_size(10);
    for (label, mode) in [
        ("wirelength", PlacerMode::Wirelength),
        (
            "net_weighting",
            PlacerMode::NetWeighting {
                alpha: 3.0,
                beta: 0.5,
            },
        ),
        ("insta_place", PlacerMode::InstaPlace { lambda_rc: 0.01 }),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, &mode| {
            b.iter(|| {
                let mut design = generate_design(&gen);
                let cfg = PlacerConfig {
                    iterations: 60,
                    mode,
                    ..PlacerConfig::default()
                };
                std::hint::black_box(place(&mut design, &cfg).hpwl_legal)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_placers);
criterion_main!(benches);
