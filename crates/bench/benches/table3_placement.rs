//! Table III bench: a short placement run per mode (relative cost of the
//! three placers).

use insta_netlist::generator::{generate_design, GeneratorConfig};
use insta_placer::{place, PlacerConfig, PlacerMode};
use insta_support::timer::{black_box, Harness};

fn main() {
    let mut gen = GeneratorConfig::medium("bench_place", 15);
    gen.clock_period_ps = 1500.0;
    gen.uniform_endpoint_taps = true;

    let mut h = Harness::new("table3_placement_modes");
    for (label, mode) in [
        ("wirelength", PlacerMode::Wirelength),
        (
            "net_weighting",
            PlacerMode::NetWeighting {
                alpha: 3.0,
                beta: 0.5,
            },
        ),
        ("insta_place", PlacerMode::InstaPlace { lambda_rc: 0.01 }),
    ] {
        h.bench(format!("place/{label}"), || {
            let mut design = generate_design(&gen);
            let cfg = PlacerConfig {
                iterations: 60,
                mode,
                ..PlacerConfig::default()
            };
            black_box(place(&mut design, &cfg).hpwl_legal)
        });
    }
    h.finish();
}
