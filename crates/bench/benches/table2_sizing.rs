//! Table II bench: one gradient-identification pass of INSTA-Size (the
//! `bRT` column's content) versus one greedy pass of the reference sizer.

use criterion::{criterion_group, criterion_main, Criterion};
use insta_engine::{InstaConfig, InstaEngine};
use insta_netlist::generator::{generate_design, GeneratorConfig};
use insta_refsta::{RefSta, StaConfig};
use insta_sizer::stage_gradients;

fn bench_sizing(c: &mut Criterion) {
    let mut gen = GeneratorConfig::with_target_pins("bench_size", 201, 11_000);
    gen.clock_period_ps = 780.0;
    let design = generate_design(&gen);
    let mut golden = RefSta::new(&design, StaConfig::default()).expect("build");
    golden.full_update(&design);
    let mut engine = InstaEngine::new(
        golden.export_insta_init(),
        InstaConfig {
            lse_tau: 0.01,
            ..InstaConfig::default()
        },
    );
    engine.propagate();
    engine.forward_lse();

    let mut group = c.benchmark_group("table2_gradient_identification");
    group.sample_size(10);
    group.bench_function("backward_tns", |b| {
        b.iter(|| {
            engine.backward_tns();
            std::hint::black_box(())
        })
    });
    group.bench_function("stage_ranking", |b| {
        engine.backward_tns();
        b.iter(|| std::hint::black_box(stage_gradients(&design, golden.graph(), &engine).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_sizing);
criterion_main!(benches);
