//! Table II bench: one gradient-identification pass of INSTA-Size (the
//! `bRT` column's content) versus one greedy pass of the reference sizer.

use insta_engine::{InstaConfig, InstaEngine};
use insta_netlist::generator::{generate_design, GeneratorConfig};
use insta_refsta::{RefSta, StaConfig};
use insta_sizer::stage_gradients;
use insta_support::timer::{black_box, Harness};

fn main() {
    let mut gen = GeneratorConfig::with_target_pins("bench_size", 201, 11_000);
    gen.clock_period_ps = 780.0;
    let design = generate_design(&gen);
    let mut golden = RefSta::new(&design, StaConfig::default()).expect("build");
    golden.full_update(&design);
    let mut engine = InstaEngine::new(
        golden.export_insta_init(),
        InstaConfig {
            lse_tau: 0.01,
            ..InstaConfig::default()
        },
    ).expect("valid snapshot");
    engine.propagate();
    engine.forward_lse();

    let mut h = Harness::new("table2_gradient_identification");
    h.bench("backward_tns", || {
        engine.backward_tns();
        black_box(())
    });
    engine.backward_tns();
    h.bench("stage_ranking", || {
        black_box(stage_gradients(&design, golden.graph(), &engine).len())
    });
    h.finish();
}
