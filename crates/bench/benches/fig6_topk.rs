//! Fig. 6 bench: full-graph INSTA propagation versus Top-K
//! (the accuracy/runtime trade-off of CPPR handling).

use insta_bench::block_specs;
use insta_engine::{InstaConfig, InstaEngine};
use insta_refsta::{RefSta, StaConfig};
use insta_support::timer::{black_box, Harness};

fn main() {
    // block-5 (the smallest Table-I block) keeps bench wall-time sane.
    let spec = &block_specs()[4];
    let design = spec.build();
    let mut golden = RefSta::new(&design, StaConfig::default()).expect("build");
    golden.full_update(&design);
    let init = golden.export_insta_init();

    let mut h = Harness::new("fig6_propagation_vs_topk");
    for k in [1usize, 8, 32, 128] {
        let mut engine = InstaEngine::new(
            init.clone(),
            InstaConfig {
                top_k: k,
                ..InstaConfig::default()
            },
        ).expect("valid snapshot");
        h.bench(format!("propagate/k={k}"), || {
            engine.propagate();
            black_box(engine.report().tns_ps)
        });
    }
    h.finish();
}
