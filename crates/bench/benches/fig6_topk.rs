//! Fig. 6 bench: full-graph INSTA propagation versus Top-K
//! (the accuracy/runtime trade-off of CPPR handling).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use insta_bench::block_specs;
use insta_engine::{InstaConfig, InstaEngine};
use insta_refsta::{RefSta, StaConfig};

fn bench_topk(c: &mut Criterion) {
    // block-5 (the smallest Table-I block) keeps bench wall-time sane.
    let spec = &block_specs()[4];
    let design = spec.build();
    let mut golden = RefSta::new(&design, StaConfig::default()).expect("build");
    golden.full_update(&design);
    let init = golden.export_insta_init();

    let mut group = c.benchmark_group("fig6_propagation_vs_topk");
    group.sample_size(10);
    for k in [1usize, 8, 32, 128] {
        let mut engine = InstaEngine::new(
            init.clone(),
            InstaConfig {
                top_k: k,
                ..InstaConfig::default()
            },
        );
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                engine.propagate();
                std::hint::black_box(engine.report().tns_ps)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_topk);
criterion_main!(benches);
