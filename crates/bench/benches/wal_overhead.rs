//! Durability-cost bench: per-commit writer latency through the full
//! protocol stack with the write-ahead log on (fsync per append, the
//! production default) versus durability off.
//!
//! The acceptance gate: making every commit durable must cost ≤ 10% of
//! commit latency on a realistic design — the WAL append is one
//! sequential write plus one `fdatasync`, amortized against a
//! propagation that dominates it. Measured on a block-scale generated
//! design (commit p50 ~10 ms on the CI box) so the gate compares
//! against real incremental-propagation work: a spaced-out `fdatasync`
//! (cold journal, ~300 µs p50 on ext4 here) is an irreducible
//! per-commit cost, and on a toy-sized commit it alone would breach
//! any honest ratio. A small absolute floor additionally absorbs
//! scheduler noise on boxes where the base commit is fast enough that
//! 10% sits below timer jitter. Emits one machine-readable JSON line
//! after the human summary and exits non-zero when the gate fails
//! across all attempts.

use insta_engine::{InstaConfig, InstaEngine};
use insta_netlist::generator::{generate_design, GeneratorConfig};
use insta_refsta::{RefSta, StaConfig};
use insta_serve::{Client, DurabilityConfig, Op, ServeConfig, Server};
use insta_support::json::{obj, Json, ToJson};
use std::os::unix::net::UnixStream;
use std::time::Instant;

/// Durable median commit latency may exceed ephemeral by this factor.
const GATE_RATIO: f64 = 1.10;
/// Absolute overhead floor (µs): a delta below this is scheduler/fsync
/// jitter, not a regression, regardless of the ratio.
const GATE_FLOOR_US: f64 = 250.0;
/// Noise retries, same policy as the other gates.
const ATTEMPTS: usize = 3;

fn build_engine() -> InstaEngine {
    let design = generate_design(&GeneratorConfig::block("wal-bench", 91, 0.25));
    let mut sta = RefSta::new(&design, StaConfig::default()).expect("reference STA");
    sta.full_update(&design);
    let mut engine = InstaEngine::new(
        sta.export_insta_init(),
        InstaConfig {
            top_k: 16,
            ..InstaConfig::default()
        },
    )
    .expect("engine init");
    engine.propagate();
    engine
}

fn connect(server: &Server) -> (Client<UnixStream, UnixStream>, std::thread::JoinHandle<()>) {
    let (ours, theirs) = UnixStream::pair().expect("socketpair");
    let srv = server.clone();
    let h = std::thread::spawn(move || {
        let r = theirs.try_clone().expect("clone");
        srv.handle_connection(r, theirs);
    });
    (Client::new(ours.try_clone().expect("clone"), ours), h)
}

/// One update commit round-trip, returning its latency in µs. Each
/// commit is a realistic multi-arc ECO batch, so the measured latency
/// is dominated by incremental propagation — the workload the 10%
/// overhead gate is supposed to be amortized against.
fn one_commit(cl: &mut Client<UnixStream, UnixStream>, i: usize) -> f64 {
    let mean = if i % 2 == 0 { 30.0 } else { 10.0 };
    let deltas: Vec<Json> = (0..8_u64)
        .map(|arc| {
            obj([
                ("arc", arc.to_json()),
                (
                    "mean",
                    Json::Arr(vec![
                        (mean + arc as f64).to_json(),
                        (mean + arc as f64).to_json(),
                    ]),
                ),
                ("sigma", Json::Arr(vec![2.0.to_json(), 2.0.to_json()])),
            ])
        })
        .collect();
    let params = obj([("deltas", Json::Arr(deltas))]);
    let t = Instant::now();
    let r = cl.call(Op::Update, None, params).expect("commit round-trip");
    assert!(r.ok, "{:?}", r.error);
    t.elapsed().as_secs_f64() * 1e6
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct Attempt {
    p50_off: f64,
    p99_off: f64,
    p50_on: f64,
    p99_on: f64,
    fsyncs: u64,
    wal_bytes: u64,
    overhead_pct: f64,
    pass: bool,
}

fn run_attempt(commits: usize) -> Attempt {
    // Two daemons over twin engines: durability off (the ephemeral
    // PR 7 daemon) and durability on with fsync per append (the
    // production default); checkpoints off so the measurement isolates
    // the per-commit WAL cost rather than the periodic snapshot write.
    let off_server = Server::new(build_engine(), ServeConfig::default());
    let dir = std::env::temp_dir().join(format!("insta-wal-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut dcfg = DurabilityConfig::new(&dir);
    dcfg.checkpoint_every = 0;
    let (on_server, _report) =
        Server::with_durability(build_engine(), ServeConfig::default(), dcfg).expect("durability");

    let (mut off_cl, off_h) = connect(&off_server);
    let (mut on_cl, on_h) = connect(&on_server);
    // Warm caches, the allocator, and the page cache on both daemons.
    for i in 0..8 {
        one_commit(&mut off_cl, i);
        one_commit(&mut on_cl, i);
    }
    // Interleave the two measurements in small chunks so slow drift
    // (CPU frequency, page-cache writeback, a noisy neighbor) hits both
    // sides equally instead of biasing whichever phase ran second.
    const CHUNK: usize = 10;
    let mut off = Vec::with_capacity(commits);
    let mut on = Vec::with_capacity(commits);
    let mut i = 0;
    while off.len() < commits {
        let n = CHUNK.min(commits - off.len());
        for _ in 0..n {
            off.push(one_commit(&mut off_cl, i));
            i += 1;
        }
        for _ in 0..n {
            on.push(one_commit(&mut on_cl, i));
            i += 1;
        }
    }
    drop(off_cl);
    drop(on_cl);
    off_h.join().expect("off connection");
    on_h.join().expect("on connection");
    off.sort_by(|a, b| a.partial_cmp(b).unwrap());
    on.sort_by(|a, b| a.partial_cmp(b).unwrap());

    let stats = &on_server.durability().expect("layer").stats;
    let fsyncs = stats.fsyncs.load(std::sync::atomic::Ordering::Relaxed);
    let wal_bytes = stats.wal_bytes.load(std::sync::atomic::Ordering::Relaxed);
    drop(on_server);
    drop(off_server);
    let _ = std::fs::remove_dir_all(&dir);

    let p50_off = percentile(&off, 0.50);
    let p50_on = percentile(&on, 0.50);
    let overhead_pct = (p50_on / p50_off.max(1e-9) - 1.0) * 100.0;
    let pass = p50_on <= p50_off * GATE_RATIO || (p50_on - p50_off) <= GATE_FLOOR_US;
    Attempt {
        p50_off,
        p99_off: percentile(&off, 0.99),
        p50_on,
        p99_on: percentile(&on, 0.99),
        fsyncs,
        wal_bytes,
        overhead_pct,
        pass,
    }
}

fn main() {
    let fast = std::env::var_os("INSTA_BENCH_FAST").is_some();
    let commits = if fast { 60 } else { 400 };

    let mut last = None;
    let mut passed = false;
    for attempt in 1..=ATTEMPTS {
        let a = run_attempt(commits);
        eprintln!(
            "wal_overhead attempt {attempt}: durability-off p50 {:.0}us p99 {:.0}us | \
             durability-on p50 {:.0}us p99 {:.0}us ({} fsyncs, {} WAL bytes) | \
             overhead {:+.1}% | {}",
            a.p50_off,
            a.p99_off,
            a.p50_on,
            a.p99_on,
            a.fsyncs,
            a.wal_bytes,
            a.overhead_pct,
            if a.pass { "PASS" } else { "RETRY" },
        );
        let ok = a.pass;
        last = Some(a);
        if ok {
            passed = true;
            break;
        }
    }
    let a = last.expect("at least one attempt");
    println!(
        "{}",
        obj([
            ("suite", Json::Str("wal_overhead".into())),
            ("commits", Json::Num(commits as f64)),
            ("p50_off_us", Json::Num(a.p50_off)),
            ("p99_off_us", Json::Num(a.p99_off)),
            ("p50_on_us", Json::Num(a.p50_on)),
            ("p99_on_us", Json::Num(a.p99_on)),
            ("fsyncs", Json::Num(a.fsyncs as f64)),
            ("wal_bytes", Json::Num(a.wal_bytes as f64)),
            ("overhead_pct", Json::Num(a.overhead_pct)),
            ("gate_ratio", Json::Num(GATE_RATIO)),
            ("gate_floor_us", Json::Num(GATE_FLOOR_US)),
            ("pass", Json::Bool(passed)),
        ])
    );
    if !passed {
        eprintln!(
            "wal_overhead: durable p50 {:.0}us exceeds {GATE_RATIO}x ephemeral p50 {:.0}us \
             (+{GATE_FLOOR_US:.0}us floor) after {ATTEMPTS} attempts",
            a.p50_on, a.p50_off
        );
        std::process::exit(1);
    }
}
