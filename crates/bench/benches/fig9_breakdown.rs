//! Fig. 9 bench: the cost of one timing refresh per mode (the
//! timer / transfer / gradient breakdown).

use insta_engine::InstaConfig;
use insta_netlist::generator::{generate_design, GeneratorConfig};
use insta_placer::{refresh_timing, PlacementDb, TimingMode};
use insta_refsta::{RefSta, StaConfig};
use insta_support::timer::{black_box, Harness};

fn main() {
    let mut gen = GeneratorConfig::medium("bench_refresh", 7);
    gen.clock_period_ps = 1200.0;
    let mut design = generate_design(&gen);
    let db = PlacementDb::random(&design, 0.45, 3);
    let mut sta = RefSta::new(&design, StaConfig::default()).expect("build");

    let mut h = Harness::new("fig9_timing_refresh");
    for (label, mode) in [
        ("timer_only", TimingMode::None),
        ("net_weighting", TimingMode::NetWeighting),
        ("insta_gradients", TimingMode::InstaPlace),
    ] {
        h.bench(format!("refresh/{label}"), || {
            let r = refresh_timing(&mut design, &db, &mut sta, mode, &InstaConfig::default());
            black_box(r.tns_ps)
        });
    }
    h.finish();
}
