//! Fig. 9 bench: the cost of one timing refresh per mode (the
//! timer / transfer / gradient breakdown).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use insta_engine::InstaConfig;
use insta_netlist::generator::{generate_design, GeneratorConfig};
use insta_placer::{refresh_timing, PlacementDb, TimingMode};
use insta_refsta::{RefSta, StaConfig};

fn bench_refresh(c: &mut Criterion) {
    let mut gen = GeneratorConfig::medium("bench_refresh", 7);
    gen.clock_period_ps = 1200.0;
    let mut design = generate_design(&gen);
    let db = PlacementDb::random(&design, 0.45, 3);
    let mut sta = RefSta::new(&design, StaConfig::default()).expect("build");

    let mut group = c.benchmark_group("fig9_timing_refresh");
    group.sample_size(10);
    for (label, mode) in [
        ("timer_only", TimingMode::None),
        ("net_weighting", TimingMode::NetWeighting),
        ("insta_gradients", TimingMode::InstaPlace),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, &mode| {
            b.iter(|| {
                let r = refresh_timing(&mut design, &db, &mut sta, mode, &InstaConfig::default());
                std::hint::black_box(r.tns_ps)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_refresh);
criterion_main!(benches);
