//! Fig. 9 bench: the per-level forward / LSE / backward runtime
//! breakdown, rendered from the engine's own trace profiles
//! (`InstaEngine::perf_report`) instead of ad-hoc timers around the
//! public entry points.
//!
//! Prints the human-readable levelized table, then one machine-readable
//! JSON line with the cumulative kernel totals (CI tees the last line).

use insta_bench::block_specs;
use insta_engine::{InstaConfig, InstaEngine};
use insta_refsta::{RefSta, StaConfig};
use insta_support::json::{obj, Json};
use insta_support::timer::black_box;

fn main() {
    let fast = std::env::var_os("INSTA_BENCH_FAST").is_some();
    let spec = &block_specs()[if fast { 0 } else { 4 }];
    let design = spec.build();
    let mut sta = RefSta::new(&design, StaConfig::default()).expect("build");
    sta.full_update(&design);
    let mut engine = InstaEngine::new(
        sta.export_insta_init(),
        InstaConfig {
            top_k: 8,
            ..InstaConfig::default()
        },
    )
    .expect("valid snapshot");

    engine.enable_tracing();
    let passes = if fast { 3 } else { 25 };
    for _ in 0..passes {
        // The fused sweep computes the Top-K queues and LSE arrivals in
        // one pass over the levels; the trace profiles still attribute
        // evaluation time to `forward` and smooth-merge time to `lse`.
        black_box(engine.propagate_fused().tns_ps);
        engine.backward_tns();
    }

    let report = engine.perf_report();
    print!("{report}");
    let (forward_ns, lse_ns, backward_ns) = report.totals_ns();
    println!(
        "{}",
        obj([
            ("suite", Json::Str("fig9_breakdown".into())),
            ("block", Json::Str(spec.name.into())),
            ("passes", Json::Num(passes as f64)),
            ("levels", Json::Num(report.rows.len() as f64)),
            ("forward_ns", Json::Num(forward_ns as f64)),
            ("lse_ns", Json::Num(lse_ns as f64)),
            ("backward_ns", Json::Num(backward_ns as f64)),
        ])
    );
}
