//! Observability-overhead gate: `update_timing` with tracing enabled
//! must cost at most 3 % over the untraced run on the same delta batch
//! (the trace layer's pay-for-what-you-use contract).
//!
//! The two arms are measured **interleaved** (untraced, traced, untraced,
//! traced, …) and compared by min-of-iterations: alternation cancels the
//! slow machine-load drift that poisons back-to-back arm comparisons, and
//! the min is the most noise-robust point estimate available. Emits one
//! machine-readable JSON line last and exits non-zero when the gate
//! fails, so `scripts/ci.sh` can tee the line into `BENCH_obs.json` and
//! fail the pipeline on a regression. Drift auditing is disabled so both
//! arms measure identical propagation work.

use insta_bench::block_specs;
use insta_engine::{DriftPolicy, InstaConfig, InstaEngine};
use insta_refsta::{estimate_eco, RefSta, StaConfig};
use insta_sizer::random_changelist;
use insta_support::json::{obj, Json};
use insta_support::timer::{black_box, fmt_duration};
use std::time::{Duration, Instant};

const MAX_OVERHEAD_PCT: f64 = 3.0;

fn main() {
    let fast = std::env::var_os("INSTA_BENCH_FAST").is_some();
    let spec = &block_specs()[4]; // block-5
    let mut design = spec.build();
    let op = random_changelist(&design, 1, 11)[0];
    let mut sta = RefSta::new(&design, StaConfig::default()).expect("build");
    sta.full_update(&design);
    let mut engine = InstaEngine::new(
        sta.export_insta_init(),
        InstaConfig {
            top_k: 8,
            drift_policy: DriftPolicy::unlimited(),
            ..InstaConfig::default()
        },
    )
    .expect("valid snapshot");
    engine.propagate();
    let est = estimate_eco(&design, &sta, op.cell, op.to);
    design.resize_cell(op.cell, op.to);
    let deltas = est.arc_deltas;

    let run = |eng: &mut InstaEngine| {
        let t0 = Instant::now();
        black_box(eng.update_timing(&deltas).expect("valid batch").tns_ps);
        t0.elapsed()
    };

    // Warm caches and the thread pool before measuring either arm.
    for _ in 0..2 {
        run(&mut engine);
    }
    let iters = if fast { 15 } else { 60 };
    let mut plain_min = Duration::MAX;
    let mut traced_min = Duration::MAX;
    for _ in 0..iters {
        engine.disable_tracing();
        plain_min = plain_min.min(run(&mut engine));
        // Re-enabling per iteration also resets the journal/profiles, so
        // the traced arm never pays for an ever-growing report.
        engine.enable_tracing();
        traced_min = traced_min.min(run(&mut engine));
    }
    engine.disable_tracing();

    let plain = plain_min.as_secs_f64() * 1e9;
    let traced = traced_min.as_secs_f64() * 1e9;
    let overhead_pct = if plain > 0.0 {
        (traced - plain) / plain * 100.0
    } else {
        0.0
    };
    let pass = overhead_pct <= MAX_OVERHEAD_PCT;
    println!(
        "obs_overhead ({}, {iters} interleaved iterations, min):",
        spec.name
    );
    println!("  untraced update_timing   {}", fmt_duration(plain_min));
    println!("  traced   update_timing   {}", fmt_duration(traced_min));
    println!(
        "  overhead                 {overhead_pct:+.2}% (gate \u{2264} {MAX_OVERHEAD_PCT}%) {}",
        if pass { "OK" } else { "FAIL" }
    );
    println!(
        "{}",
        obj([
            ("suite", Json::Str("obs_overhead".into())),
            ("block", Json::Str(spec.name.into())),
            ("untraced_update_ns", Json::Num(plain)),
            ("traced_update_ns", Json::Num(traced)),
            ("overhead_pct", Json::Num(overhead_pct)),
            ("max_overhead_pct", Json::Num(MAX_OVERHEAD_PCT)),
            ("pass", Json::Bool(pass)),
        ])
    );
    if !pass {
        std::process::exit(1);
    }
}
