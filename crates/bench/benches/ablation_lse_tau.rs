//! §III-F ablation: the differentiable (LSE) forward pass versus the
//! evaluation (hard-max Top-K) pass, and LSE cost across temperatures.

use insta_bench::block_specs;
use insta_engine::{InstaConfig, InstaEngine};
use insta_refsta::{RefSta, StaConfig};
use insta_support::timer::{black_box, Harness};

fn main() {
    let spec = &block_specs()[4]; // block-5
    let design = spec.build();
    let mut golden = RefSta::new(&design, StaConfig::default()).expect("build");
    golden.full_update(&design);
    let init = golden.export_insta_init();

    let mut h = Harness::new("ablation_lse");
    let mut engine = InstaEngine::new(init.clone(), InstaConfig::default()).expect("valid snapshot");
    h.bench("hard_max_topk32", || {
        engine.propagate();
        black_box(engine.report().wns_ps)
    });
    for tau in [0.01f64, 1.0, 10.0] {
        let mut engine = InstaEngine::new(
            init.clone(),
            InstaConfig {
                lse_tau: tau,
                ..InstaConfig::default()
            },
        ).expect("valid snapshot");
        engine.propagate();
        h.bench(format!("lse_forward/tau={tau}"), || {
            engine.forward_lse();
            black_box(())
        });
    }
    h.finish();
}
