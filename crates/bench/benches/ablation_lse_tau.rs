//! §III-F ablation: the differentiable (LSE) forward pass versus the
//! evaluation (hard-max Top-K) pass, and LSE cost across temperatures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use insta_bench::block_specs;
use insta_engine::{InstaConfig, InstaEngine};
use insta_refsta::{RefSta, StaConfig};

fn bench_lse(c: &mut Criterion) {
    let spec = &block_specs()[4]; // block-5
    let design = spec.build();
    let mut golden = RefSta::new(&design, StaConfig::default()).expect("build");
    golden.full_update(&design);
    let init = golden.export_insta_init();

    let mut group = c.benchmark_group("ablation_lse");
    group.sample_size(10);
    let mut engine = InstaEngine::new(init.clone(), InstaConfig::default());
    group.bench_function("hard_max_topk32", |b| {
        b.iter(|| {
            engine.propagate();
            std::hint::black_box(engine.report().wns_ps)
        })
    });
    for tau in [0.01f64, 1.0, 10.0] {
        let mut engine = InstaEngine::new(
            init.clone(),
            InstaConfig {
                lse_tau: tau,
                ..InstaConfig::default()
            },
        );
        engine.propagate();
        group.bench_with_input(
            BenchmarkId::new("lse_forward_tau", format!("{tau}")),
            &tau,
            |b, _| {
                b.iter(|| {
                    engine.forward_lse();
                    std::hint::black_box(())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lse);
criterion_main!(benches);
