//! MCMM-throughput bench: a C-corner × M-mode sweep evaluated in one
//! `evaluate_mcmm` call vs C × M sequential per-corner sessions.
//!
//! The MCMM path propagates one lane per *corner* (modes are report-time
//! masks sharing that lane) inside one shared levelized sweep, while the
//! sequential arm re-annotates, propagates, masks, and rolls back once
//! per (corner, mode) pair — so the sweep should win by a wide margin.
//! Emits one machine-readable JSON line after the human table and exits
//! non-zero when the speedup falls below the gate (acceptance: ≥ 3×).
//! Drift auditing is disabled so neither path degrades to the other.

use insta_bench::block_specs;
use insta_engine::{
    CornerTransform, DriftPolicy, InstaConfig, InstaEngine, ModeMask, Scenario,
};
use insta_refsta::{RefSta, StaConfig};
use insta_support::json::{obj, Json};
use insta_support::timer::{black_box, Harness};

const MODES: usize = 6;

/// Minimum accepted sweep-vs-sequential speedup. Three corner lanes in
/// one shared sweep vs 3 × 6 full session round-trips measures well
/// above 10×; 3× catches a regression that re-propagates per mode.
const GATE_MIN_SPEEDUP: f64 = 3.0;

fn main() {
    let spec = &block_specs()[2]; // block-3
    let design = spec.build();
    let mut sta = RefSta::new(&design, StaConfig::default()).expect("build");
    sta.full_update(&design);
    let mut engine = InstaEngine::new(
        sta.export_insta_init(),
        InstaConfig {
            top_k: 8,
            drift_policy: DriftPolicy::unlimited(),
            ..InstaConfig::default()
        },
    )
    .expect("valid snapshot");
    engine.propagate();
    let n_eps = engine.report().slacks.len();

    let corners = [
        CornerTransform::IDENTITY,
        CornerTransform::scale(1.06, 1.15),
        CornerTransform {
            mean_scale: 0.94,
            mean_offset_ps: 2.0,
            sigma_scale: 1.05,
            sigma_offset_ps: 0.0,
        },
    ];
    // Disjoint endpoint partitions standing in for functional modes.
    let modes: Vec<ModeMask> = (0..MODES)
        .map(|m| ModeMask::disabling((0..n_eps).filter(|ep| ep % MODES == m)))
        .collect();
    let scenarios: Vec<Scenario> = corners
        .iter()
        .flat_map(|&c| {
            modes
                .iter()
                .map(move |m| Scenario::default().with_corner(c).with_mode(m.clone()))
        })
        .collect();
    // The sequential arm's per-scenario pre-scaled annotation lists,
    // prepared outside the timed region (a real per-corner flow would
    // load per-corner tables once, not derive them per query).
    let twins: Vec<_> = scenarios
        .iter()
        .map(|sc| engine.scenario_twin_deltas(sc))
        .collect();

    let mut h = Harness::new("mcmm_throughput");
    h.bench("sequential_corner_sessions", || {
        let mut tns = 0.0;
        for (sc, twin) in scenarios.iter().zip(&twins) {
            let mut session = engine.begin_session();
            let report = session.update_timing(twin).expect("valid corner");
            tns += match &sc.mode {
                Some(m) => report.masked(m).tns_ps,
                None => report.tns_ps,
            };
            session.rollback();
        }
        black_box(tns)
    });
    engine.propagate(); // resync the base before the swept path
    h.bench("evaluate_mcmm", || {
        let mcmm = engine.evaluate_mcmm(&scenarios);
        let tns: f64 = mcmm
            .scenarios
            .iter()
            .map(|r| r.outcome.as_ref().expect("valid scenario").tns_ps)
            .sum();
        black_box(tns + mcmm.merged_tns_ps)
    });
    let results = h.finish();

    let mean_ns = |name: &str| {
        results
            .iter()
            .find(|m| m.name == name)
            .map_or(0.0, |m| m.mean.as_secs_f64() * 1e9)
    };
    let sequential = mean_ns("sequential_corner_sessions");
    let sweep = mean_ns("evaluate_mcmm");
    let speedup = if sweep > 0.0 { sequential / sweep } else { 0.0 };
    println!(
        "{}",
        obj([
            ("suite", Json::Str("mcmm_throughput".into())),
            ("block", Json::Str(spec.name.into())),
            ("corners", Json::Num(corners.len() as f64)),
            ("modes", Json::Num(MODES as f64)),
            ("scenarios", Json::Num(scenarios.len() as f64)),
            ("sequential_ns", Json::Num(sequential)),
            ("mcmm_ns", Json::Num(sweep)),
            ("speedup_x", Json::Num(speedup)),
            ("gate_min_speedup_x", Json::Num(GATE_MIN_SPEEDUP)),
        ])
    );
    if speedup < GATE_MIN_SPEEDUP {
        eprintln!("mcmm_throughput: speedup {speedup:.2}x below the {GATE_MIN_SPEEDUP}x gate");
        std::process::exit(1);
    }
}
