//! Regenerates every table and figure of the INSTA paper's evaluation on
//! the synthetic benchmark suites (see DESIGN.md's per-experiment index).
//!
//! ```text
//! cargo run --release -p insta-bench --bin repro -- all
//! cargo run --release -p insta-bench --bin repro -- fig6 table1 fig7 table2 table3 fig9
//! ```

use insta_bench::{block_specs, fmt_ps, iwls_specs, superblue_specs};
use insta_engine::{InstaConfig, InstaEngine, MismatchStats};
use insta_netlist::{DesignStats, TimingGraph};
use insta_placer::{place, refresh_timing, PlacementDb, PlacerConfig, PlacerMode, TimingMode};
use insta_refsta::{RefSta, StaConfig};
use insta_sizer::{
    insta_size, random_changelist, reference_size, run_evaluator_flow, InstaSizeConfig,
    ReferenceSizeConfig,
};
use std::time::Instant;

fn golden_slack_vec(sta: &RefSta) -> Vec<f64> {
    sta.report().endpoints.iter().map(|e| e.slack_ps).collect()
}

/// Fig. 6: endpoint-slack correlation on block-1, Top-K=1 (no CPPR) vs
/// Top-K=128 (with CPPR).
fn fig6() {
    println!("=== Fig. 6: INSTA vs reference endpoint slack correlation (block-1) ===");
    let spec = &block_specs()[0];
    let design = spec.build();
    let graph = TimingGraph::build(&design).expect("acyclic");
    println!("subject: {}", DesignStats::collect(&design, &graph));
    let mut golden = RefSta::new(&design, StaConfig::default()).expect("build");
    let t = Instant::now();
    golden.full_update(&design);
    println!("reference full update: {:.2} s", t.elapsed().as_secs_f64());
    let init = golden.export_insta_init();
    let exact = golden_slack_vec(&golden);

    for (k, cppr, label) in [
        (1usize, false, "Top-K=1 (no CPPR handling)"),
        (128usize, true, "Top-K=128 (CPPR via unique startpoints)"),
    ] {
        let mut eng = InstaEngine::new(
            init.clone(),
            InstaConfig {
                top_k: k,
                cppr,
                ..InstaConfig::default()
            },
        ).expect("valid snapshot");
        let t = Instant::now();
        let report = eng.propagate().clone();
        let dt = t.elapsed().as_secs_f64();
        let stats = MismatchStats::compute(&report.slacks, &exact);
        println!(
            "{label:<42}: {stats}  runtime {:.3} s  state {:.2} GB",
            dt,
            eng.state_bytes() as f64 / 1e9
        );
    }
    println!();
}

/// Table I: correlation / runtime / memory / mismatch across 5 blocks at
/// Top-K=32.
fn table1() {
    println!("=== Table I: timing correlation, 5 blocks, Top-K=32 ===");
    println!(
        "{:<10} {:>9} {:>9} {:>8} {:>14} {:>10} {:>9} {:>22}",
        "design", "#cells", "#pins", "UT(s)", "ep slack corr", "rt (s)", "mem (GB)", "ep mismatch (avg,wst)"
    );
    for spec in block_specs() {
        let design = spec.build();
        let mut golden = RefSta::new(&design, StaConfig::default()).expect("build");
        let t = Instant::now();
        golden.full_update(&design);
        let ut = t.elapsed().as_secs_f64();
        let exact = golden_slack_vec(&golden);
        let mut eng = InstaEngine::new(golden.export_insta_init(), InstaConfig::default()).expect("valid snapshot");
        // Warm once, then time the propagation proper.
        eng.propagate();
        let t = Instant::now();
        let report = eng.propagate().clone();
        let rt = t.elapsed().as_secs_f64();
        let stats = MismatchStats::compute(&report.slacks, &exact);
        println!(
            "{:<10} {:>9} {:>9} {:>8.2} {:>14.5} {:>10.4} {:>9.3} {:>10.2e} {:>10.2}",
            spec.name,
            design.cells().len(),
            design.pins().len(),
            ut,
            stats.correlation,
            rt,
            eng.state_bytes() as f64 / 1e9,
            stats.avg_abs_ps,
            stats.worst_abs_ps,
        );
    }
    println!();
}

/// Figs. 7–8: incremental evaluator runtimes on block-2 plus pre/post
/// correlation drift.
fn fig7() {
    println!("=== Fig. 7: incremental STA runtime per sizing iteration (block-2) ===");
    let spec = &block_specs()[1];
    let mut design = spec.build();
    let ops = random_changelist(&design, 25, 42);
    // K=8 for the evaluator: exact on this suite (see the ablation bench)
    // at a quarter of the Top-K=32 kernel work; Table I keeps the paper's
    // K=32.
    let result = run_evaluator_flow(
        &mut design,
        &ops,
        StaConfig::default(),
        InstaConfig {
            top_k: 8,
            ..InstaConfig::default()
        },
    );
    let stats = |f: fn(&insta_sizer::IterationTiming) -> f64| -> (f64, f64) {
        let xs: Vec<f64> = result.iterations.iter().map(f).collect();
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
        (m * 1e3, var.sqrt() * 1e3)
    };
    println!(
        "per-iteration runtime over {} iterations (mean ± std):",
        result.iterations.len()
    );
    let (m, s) = stats(|x| x.full_s);
    println!("  reference full update (commercial-tool role): {m:8.2} ± {s:5.2} ms");
    let (m, s) = stats(|x| x.incremental_s);
    println!("  reference incremental (in-house engine role) : {m:8.2} ± {s:5.2} ms  (cone-size dependent)");
    let (m, s) = stats(|x| x.insta_s);
    println!("  INSTA (estimate_eco + re-annot + propagate)  : {m:8.2} ± {s:5.2} ms  (flat: full-graph pass)");
    println!(
        "  speedups: {:.1}x vs full, {:.2}x vs incremental",
        result.speedup_vs_full, result.speedup_vs_incremental
    );
    println!("=== Fig. 8: correlation impact of estimate_eco re-annotation ===");
    println!("  before flow: {}", result.corr_before);
    println!("  after  flow: {}", result.corr_after);
    println!();
}

/// Table II: INSTA-Size vs the greedy reference sizer on IWLS-like
/// circuits.
fn table2() {
    println!("=== Table II: gate sizing for timing optimization (IWLS-like) ===");
    for spec in iwls_specs() {
        let design0 = spec.build();
        println!(
            "--- {} ({} pins, bRT measured below) ---",
            spec.name,
            design0.pins().len()
        );

        let mut d_ref = spec.build();
        let mut sta_ref = RefSta::new(&d_ref, StaConfig::default()).expect("build");
        let r = reference_size(&mut d_ref, &mut sta_ref, &ReferenceSizeConfig::default());

        let mut d_ins = spec.build();
        let mut sta_ins = RefSta::new(&d_ins, StaConfig::default()).expect("build");
        let i = insta_size(&mut d_ins, &mut sta_ins, &InstaSizeConfig::default());

        println!(
            "  initial    : WNS {:>9} TNS {:>11} #vio {:>4}",
            fmt_ps(r.wns_before_ps),
            fmt_ps(r.tns_before_ps),
            r.violations_before
        );
        println!(
            "  reference  : WNS {:>9} TNS {:>11} #vio {:>4}  cells sized {:>5}  rt {:.2}s",
            fmt_ps(r.wns_after_ps),
            fmt_ps(r.tns_after_ps),
            r.violations_after,
            r.cells_sized,
            r.runtime_s
        );
        let fewer = if r.cells_sized > 0 {
            format!(
                " ({:+.0}%)",
                100.0 * (i.cells_sized as f64 / r.cells_sized as f64 - 1.0)
            )
        } else {
            String::new()
        };
        println!(
            "  INSTA-Size : WNS {:>9} TNS {:>11} #vio {:>4}  cells sized {:>5}{}  rt {:.2}s  bRT {:.3}s",
            fmt_ps(i.wns_after_ps),
            fmt_ps(i.tns_after_ps),
            i.violations_after,
            i.cells_sized,
            fewer,
            i.runtime_s,
            i.backward_runtime_s
        );
    }
    println!();
}

/// Table III: timing-driven placement after legalization.
fn table3() {
    println!("=== Table III: timing-driven placement, post-legalization ===");
    println!(
        "{:<13} {:>12} {:>11} | {:>12} {:>11} {:>7} | {:>12} {:>11} {:>7}  {:>8}",
        "instance", "DP HPWL", "DP TNS", "DP4.0 HPWL", "DP4.0 TNS", "recov%", "INSTA HPWL", "INSTA TNS", "recov%", "dHPWL%"
    );
    let mut sum_dh = 0.0;
    let mut sum_nw_rec = 0.0;
    let mut sum_ip_rec = 0.0;
    let mut counted = 0usize;
    // Post-legalization TNS at this scale is noisy run-to-run, so every
    // (instance, mode) cell averages two placement seeds.
    const SEEDS: u64 = 2;
    for spec in superblue_specs() {
        let run = |mode: PlacerMode| -> (f64, f64) {
            let mut hpwl = 0.0;
            let mut tns = 0.0;
            for ds in 0..SEEDS {
                let mut design = spec.build();
                let cfg = PlacerConfig {
                    seed: spec.seed + ds,
                    mode,
                    ..PlacerConfig::default()
                };
                let r = place(&mut design, &cfg);
                hpwl += r.hpwl_legal;
                tns += r.tns_legal_ps;
            }
            (hpwl / SEEDS as f64, tns / SEEDS as f64)
        };
        let dp = run(PlacerMode::Wirelength);
        let nw = run(PlacerMode::NetWeighting {
            alpha: 1.0,
            beta: 0.5,
        });
        let ip = run(PlacerMode::InstaPlace { lambda_rc: 0.01 });
        // (INSTA-Place runs with the placement-tuned defaults: lse_tau=60,
        // timing_scale=0.4 — see PlacerConfig::default and EXPERIMENTS.md.)
        // TNS recovered relative to the timing-oblivious DP baseline.
        let recov = |tns: f64| {
            if dp.1 < 0.0 {
                100.0 * (1.0 - tns / dp.1)
            } else {
                0.0
            }
        };
        let dh = 100.0 * (ip.0 / nw.0 - 1.0);
        sum_dh += dh;
        sum_nw_rec += recov(nw.1);
        sum_ip_rec += recov(ip.1);
        counted += 1;
        println!(
            "{:<13} {:>12.0} {:>11.1} | {:>12.0} {:>11.1} {:>6.0}% | {:>12.0} {:>11.1} {:>6.0}%  {:>7.1}%",
            spec.name,
            dp.0,
            dp.1,
            nw.0,
            nw.1,
            recov(nw.1),
            ip.0,
            ip.1,
            recov(ip.1),
            dh
        );
    }
    if counted > 0 {
        println!(
            "{:<13} mean TNS recovered vs DP: net-weighting {:.0}%, INSTA-Place {:.0}%; INSTA-Place HPWL vs net-weighting: {:+.1}%",
            "average",
            sum_nw_rec / counted as f64,
            sum_ip_rec / counted as f64,
            sum_dh / counted as f64
        );
    }
    println!("(recov%: fraction of the DP baseline's TNS recovered; dHPWL%: INSTA-Place HPWL relative to net-weighting)");
    println!();
}

/// Fig. 9: runtime breakdown of one timing-update iteration on the
/// largest placement instance.
fn fig9() {
    println!("=== Fig. 9: timing-update breakdown on superblue10 ===");
    let spec = superblue_specs()
        .into_iter()
        .find(|s| s.name == "superblue10")
        .expect("largest instance");
    let mut design = spec.build();
    println!("instance: {} cells, {} pins", design.cells().len(), design.pins().len());
    let db = PlacementDb::random(&design, 0.45, spec.seed);
    let mut sta = RefSta::new(&design, StaConfig::default()).expect("build");

    // Net-weighting baseline refresh ([19]'s role).
    let nw = refresh_timing(
        &mut design,
        &db,
        &mut sta,
        TimingMode::NetWeighting,
        &InstaConfig::default(),
    );
    // INSTA-Place refresh.
    let ip = refresh_timing(
        &mut design,
        &db,
        &mut sta,
        TimingMode::InstaPlace,
        &InstaConfig::default(),
    );
    println!(
        "net-weighting refresh: wires {:6.1} ms + reference timer {:6.1} ms + criticality (in-timer) = {:6.1} ms total",
        nw.breakdown.wire_update_s * 1e3,
        nw.breakdown.reference_sta_s * 1e3,
        nw.breakdown.total_s() * 1e3
    );
    println!(
        "INSTA-Place refresh  : wires {:6.1} ms + reference timer {:6.1} ms + transfer {:6.1} ms + INSTA grads {:6.1} ms = {:6.1} ms total",
        ip.breakdown.wire_update_s * 1e3,
        ip.breakdown.reference_sta_s * 1e3,
        ip.breakdown.transfer_s * 1e3,
        ip.breakdown.insta_grad_s * 1e3,
        ip.breakdown.total_s() * 1e3
    );
    println!(
        "overhead of the gradient path over net weighting: {:+.0}%",
        100.0 * (ip.breakdown.total_s() / nw.breakdown.total_s() - 1.0)
    );
    println!();
}

/// Extensions beyond the paper's tables: power recovery (the flow App 1
/// serves) and gradient-guided buffering (the paper's stated future work).
fn extensions() {
    use insta_netlist::generator::{generate_design, GeneratorConfig};
    use insta_sizer::{insta_buffer, power_recover, BufferingConfig, PowerRecoveryConfig};

    println!("=== Extensions: power recovery + INSTA-Buffer ===");
    // Power recovery on an oversized, relaxed design.
    let mut gen = GeneratorConfig::medium("ext_power", 61);
    gen.clock_period_ps = 1600.0;
    gen.drive_choices = vec![4];
    let mut d = generate_design(&gen);
    let mut sta = RefSta::new(&d, StaConfig::default()).expect("build");
    sta.full_update(&d);
    let p = power_recover(&mut d, &mut sta, &PowerRecoveryConfig::default());
    println!(
        "power recovery ({} cells): leakage {:.0} -> {:.0} ({:.0}% recovered), {} downsizing commits, vio {} -> {}, {:.2} s",
        d.cells().len(),
        p.leakage_before,
        p.leakage_after,
        100.0 * p.recovery_frac(),
        p.cells_downsized,
        p.timing.violations_before,
        p.timing.violations_after,
        p.timing.runtime_s
    );

    // Buffering on a wire-dominated design.
    let mut gen = GeneratorConfig::medium("ext_buf", 63);
    gen.mean_wire_um = 90.0;
    gen.clock_period_ps = 1500.0;
    let mut d = generate_design(&gen);
    let b = insta_buffer(&mut d, &BufferingConfig::default());
    println!(
        "INSTA-Buffer: TNS {:.0} -> {:.0} ps, WNS {:.0} -> {:.0} ps, {} buffers, {:.2} s",
        b.tns_before_ps, b.tns_after_ps, b.wns_before_ps, b.wns_after_ps, b.buffers_added, b.runtime_s
    );
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let run_all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |name: &str| run_all || args.iter().any(|a| a == name);
    if want("fig6") {
        fig6();
    }
    if want("table1") {
        table1();
    }
    if want("fig7") || args.iter().any(|a| a == "fig8") {
        fig7();
    }
    if want("table2") {
        table2();
    }
    if want("table3") {
        table3();
    }
    if want("fig9") {
        fig9();
    }
    if want("extensions") {
        extensions();
    }
}
