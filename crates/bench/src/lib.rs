//! Shared harness for the paper-reproduction benchmarks.
//!
//! Defines the benchmark suites standing in for the paper's proprietary
//! workloads (see DESIGN.md): five "block" designs (Table I / Fig. 6),
//! four IWLS-like circuits (Table II), and eight superblue-like placement
//! instances (Table III). Every suite is deterministic; sizes are scaled
//! to laptop scale and recorded in EXPERIMENTS.md next to the paper's
//! original sizes.

use insta_netlist::generator::{generate_design, GeneratorConfig};
use insta_netlist::Design;

/// One synthetic block specification.
#[derive(Debug, Clone)]
pub struct BlockSpec {
    /// Display name (mirrors the paper's block-1..block-5).
    pub name: &'static str,
    /// Generator seed.
    pub seed: u64,
    /// Block scale (1.0 ≈ 25k gates; the paper's blocks are 2–4M cells).
    pub scale: f64,
    /// Clock period (ps) — tight enough that some endpoints violate.
    pub period_ps: f64,
}

impl BlockSpec {
    /// Builds the design of this spec.
    pub fn build(&self) -> Design {
        let mut cfg = GeneratorConfig::block(self.name, self.seed, self.scale);
        cfg.clock_period_ps = self.period_ps;
        generate_design(&cfg)
    }
}

/// The five Table-I blocks. `block-1` is the largest (the Fig. 6 subject).
pub fn block_specs() -> Vec<BlockSpec> {
    vec![
        BlockSpec { name: "block-1", seed: 101, scale: 1.0, period_ps: 1050.0 },
        BlockSpec { name: "block-2", seed: 102, scale: 0.40, period_ps: 900.0 },
        BlockSpec { name: "block-3", seed: 103, scale: 0.60, period_ps: 950.0 },
        BlockSpec { name: "block-4", seed: 104, scale: 0.45, period_ps: 920.0 },
        BlockSpec { name: "block-5", seed: 105, scale: 0.40, period_ps: 880.0 },
    ]
}

/// One IWLS-like circuit specification (Table II).
#[derive(Debug, Clone)]
pub struct IwlsSpec {
    /// Display name (mirrors the paper's IWLS rows).
    pub name: &'static str,
    /// Generator seed.
    pub seed: u64,
    /// Target netlist pin count (the paper reports 24k/50k/11k/35k).
    pub target_pins: usize,
    /// Clock period (ps).
    pub period_ps: f64,
}

impl IwlsSpec {
    /// Builds the design of this spec.
    pub fn build(&self) -> Design {
        let mut cfg = GeneratorConfig::with_target_pins(self.name, self.seed, self.target_pins);
        cfg.clock_period_ps = self.period_ps;
        generate_design(&cfg)
    }
}

/// The four Table-II circuits.
pub fn iwls_specs() -> Vec<IwlsSpec> {
    vec![
        IwlsSpec { name: "aes_core", seed: 201, target_pins: 24_000, period_ps: 900.0 },
        IwlsSpec { name: "cipher_top", seed: 202, target_pins: 50_000, period_ps: 900.0 },
        IwlsSpec { name: "des", seed: 203, target_pins: 11_000, period_ps: 800.0 },
        IwlsSpec { name: "mc_top", seed: 204, target_pins: 35_000, period_ps: 820.0 },
    ]
}

/// One superblue-like placement instance (Table III).
#[derive(Debug, Clone)]
pub struct SuperblueSpec {
    /// Display name.
    pub name: &'static str,
    /// Generator seed.
    pub seed: u64,
    /// Scale of the netlist.
    pub scale: f64,
    /// Clock period (ps).
    pub period_ps: f64,
}

impl SuperblueSpec {
    /// Builds the design of this spec.
    pub fn build(&self) -> Design {
        let mut cfg = GeneratorConfig::block(self.name, self.seed, self.scale);
        cfg.clock_period_ps = self.period_ps;
        // Placement benchmarks need a heterogeneous slack profile (only
        // the deepest paths violate) and high-fanout nets (where net
        // weighting and arc weighting genuinely diverge, paper Fig. 5).
        cfg.uniform_endpoint_taps = true;
        cfg.hub_fraction = 0.04;
        cfg.hub_pick_prob = 0.35;
        generate_design(&cfg)
    }
}

/// The eight Table-III instances (`superblue10` is the largest, the Fig. 9
/// subject).
pub fn superblue_specs() -> Vec<SuperblueSpec> {
    vec![
        SuperblueSpec { name: "superblue1", seed: 301, scale: 0.12, period_ps: 7950.0 },
        SuperblueSpec { name: "superblue3", seed: 303, scale: 0.10, period_ps: 10230.0 },
        SuperblueSpec { name: "superblue4", seed: 304, scale: 0.08, period_ps: 8530.0 },
        SuperblueSpec { name: "superblue5", seed: 305, scale: 0.10, period_ps: 6620.0 },
        SuperblueSpec { name: "superblue7", seed: 307, scale: 0.12, period_ps: 10090.0 },
        SuperblueSpec { name: "superblue10", seed: 310, scale: 0.20, period_ps: 13840.0 },
        SuperblueSpec { name: "superblue16", seed: 316, scale: 0.10, period_ps: 7200.0 },
        SuperblueSpec { name: "superblue18", seed: 318, scale: 0.08, period_ps: 7360.0 },
    ]
}

/// Formats picoseconds compactly for table rows.
pub fn fmt_ps(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "inf".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_specs_build_valid_designs() {
        // Only the smallest block to keep unit tests quick.
        let spec = &block_specs()[4];
        let d = spec.build();
        d.validate().expect("valid design");
        assert!(d.cells().len() > 3_000);
    }

    #[test]
    fn suites_have_expected_cardinality() {
        assert_eq!(block_specs().len(), 5);
        assert_eq!(iwls_specs().len(), 4);
        assert_eq!(superblue_specs().len(), 8);
    }
}
