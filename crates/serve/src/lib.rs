//! Timing-as-a-service: a fault-tolerant daemon over the INSTA engine.
//!
//! The engine itself is a single-writer data structure: sessions mutate
//! Top-K state in place and commit or roll back transactionally. This
//! crate puts a *service* in front of it so one timing engine can back
//! many concurrent consumers — the paper's "timing feedback inside the
//! optimization loop" deployed as shared infrastructure:
//!
//! * [`server`] — MVCC snapshot publication (readers are lock-free with
//!   respect to the writer; an epoch is observed whole or not at all),
//!   the panic-isolating connection supervisor, and request dispatch.
//! * [`admission`] — bounded in-flight admission with typed `overloaded`
//!   rejections and graceful degradation tiers: shed heavy analysis
//!   first, degrade read freshness second, never drop the writer.
//! * [`protocol`] — length-prefixed JSON frames (scriptable from a
//!   shell) and the request/response schema; f64 slacks survive the wire
//!   bit-exactly via shortest round-trip formatting.
//! * [`client`] — the blocking client used by tests, benches, and
//!   scripted sessions.
//!
//! The `insta-serve` binary serves stdin/stdout by default or TCP with
//! `--tcp ADDR`. See DESIGN.md "Service architecture" for the failure
//! matrix and README "Timing as a service" for a scripted quickstart.

pub mod admission;
pub mod client;
pub mod protocol;
pub mod server;

pub use admission::{Admission, Rejection, ServeConfig, ServeCounters, Tier};
pub use client::{Client, ClientError, Response};
pub use protocol::{Op, OpKind, Request};
pub use server::{Server, SnapshotCell};
