//! Timing-as-a-service: a fault-tolerant daemon over the INSTA engine.
//!
//! The engine itself is a single-writer data structure: sessions mutate
//! Top-K state in place and commit or roll back transactionally. This
//! crate puts a *service* in front of it so one timing engine can back
//! many concurrent consumers — the paper's "timing feedback inside the
//! optimization loop" deployed as shared infrastructure:
//!
//! * [`server`] — MVCC snapshot publication (readers are lock-free with
//!   respect to the writer; an epoch is observed whole or not at all),
//!   the panic-isolating connection supervisor, and request dispatch.
//! * [`admission`] — bounded in-flight admission with typed `overloaded`
//!   rejections and graceful degradation tiers: shed heavy analysis
//!   first, degrade read freshness second, never drop the writer.
//! * [`protocol`] — length-prefixed JSON frames (scriptable from a
//!   shell) and the request/response schema; f64 slacks survive the wire
//!   bit-exactly via shortest round-trip formatting.
//! * [`client`] — the blocking client used by tests, benches, and
//!   scripted sessions.
//! * [`wal`] — the durability layer: a checksummed, length-framed
//!   write-ahead log of committed writer ops (appended and fsync'd
//!   *before* publication) plus atomic binary checkpoints of the
//!   committed engine state.
//! * [`recovery`] — startup recovery: newest valid checkpoint + WAL tail
//!   replayed through real sessions, bit-identical to a crash-free twin;
//!   torn tails truncated with typed incidents.
//!
//! The `insta-serve` binary serves stdin/stdout by default or TCP with
//! `--tcp ADDR`; add `--durability DIR` to survive `kill -9` with no
//! committed work lost. See DESIGN.md "Service architecture" and
//! "Durability and recovery" for the failure matrices and README
//! "Timing as a service" for a scripted quickstart.

pub mod admission;
pub mod client;
pub mod protocol;
pub mod recovery;
pub mod server;
pub mod wal;

pub use admission::{Admission, Rejection, ServeConfig, ServeCounters, Tier};
pub use client::{Client, ClientError, Response};
pub use protocol::{Op, OpKind, Request, PROTOCOL_VERSION};
pub use recovery::{recover, RecoveryReport};
pub use server::{Server, SnapshotCell};
pub use wal::{Durability, DurabilityConfig, DurabilityStats};
