//! A minimal blocking client — what the tests, the bench, and scripted
//! sessions use to talk to the daemon.

use crate::protocol::{
    read_frame, write_frame, write_frame_bytes, FrameError, Op, Request, PROTOCOL_VERSION,
};
use insta_support::json::{parse, Json};
use std::io::{BufReader, Read, Write};

/// One end of a conversation with the daemon.
pub struct Client<R: Read, W: Write> {
    reader: BufReader<R>,
    writer: W,
    next_id: u64,
    max_frame_bytes: usize,
    /// The `version` field stamped on every request.
    /// [`PROTOCOL_VERSION`] by default; override with
    /// [`with_version`](Self::with_version) to probe mismatch handling
    /// (or `None` to skip the check entirely).
    version: Option<u64>,
}

/// A decoded response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Echoed request id.
    pub id: u64,
    /// The published epoch at reply time.
    pub epoch: u64,
    /// Success flag.
    pub ok: bool,
    /// The result object (`Null` on failure).
    pub result: Json,
    /// `(code, message, retry_after_ms)` on failure.
    pub error: Option<(String, String, Option<u64>)>,
}

impl Response {
    /// The error code, if this is a failure.
    pub fn code(&self) -> Option<&str> {
        self.error.as_ref().map(|(c, _, _)| c.as_str())
    }
}

/// Client-side failure: transport or an unparseable reply.
#[derive(Debug)]
pub enum ClientError {
    /// The stream broke.
    Frame(FrameError),
    /// The daemon's reply was not a response object.
    BadReply(String),
    /// Write-side I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "frame: {e}"),
            ClientError::BadReply(m) => write!(f, "bad reply: {m}"),
            ClientError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl<R: Read, W: Write> Client<R, W> {
    /// Wraps the two halves of a stream.
    pub fn new(reader: R, writer: W) -> Self {
        Client {
            reader: BufReader::new(reader),
            writer,
            next_id: 1,
            max_frame_bytes: 64 << 20,
            version: Some(PROTOCOL_VERSION),
        }
    }

    /// Overrides the protocol version stamped on requests (`None` = omit
    /// the field, skipping the server-side check).
    pub fn with_version(mut self, version: Option<u64>) -> Self {
        self.version = version;
        self
    }

    /// Sends one request and blocks for its response.
    pub fn call(
        &mut self,
        op: Op,
        deadline_ms: Option<u64>,
        params: Json,
    ) -> Result<Response, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let req = Request {
            id,
            op,
            deadline_ms,
            version: self.version,
            params,
        };
        write_frame(&mut self.writer, &req.encode()).map_err(ClientError::Io)?;
        self.read_response()
    }

    /// Sends raw bytes as a frame body, verbatim — invalid UTF-8
    /// included (the chaos tests' entry point).
    pub fn send_raw(&mut self, body: &[u8]) -> Result<(), ClientError> {
        write_frame_bytes(&mut self.writer, body).map_err(ClientError::Io)
    }

    /// Writes pre-framed bytes verbatim — corrupted frames included.
    pub fn send_frame_bytes(&mut self, frame: &[u8]) -> Result<(), ClientError> {
        self.writer.write_all(frame).map_err(ClientError::Io)?;
        self.writer.flush().map_err(ClientError::Io)
    }

    /// Reads and decodes the next response frame.
    pub fn read_response(&mut self) -> Result<Response, ClientError> {
        let body = read_frame(&mut self.reader, self.max_frame_bytes).map_err(ClientError::Frame)?;
        let text = std::str::from_utf8(&body)
            .map_err(|e| ClientError::BadReply(format!("non-UTF-8 reply: {e}")))?;
        let doc = parse(text).map_err(|e| ClientError::BadReply(e.to_string()))?;
        let ok = doc
            .get::<bool>("ok")
            .map_err(|e| ClientError::BadReply(e.to_string()))?;
        let error = if ok {
            None
        } else {
            let e = doc
                .field("error")
                .map_err(|e| ClientError::BadReply(e.to_string()))?;
            Some((
                e.get::<String>("code").unwrap_or_default(),
                e.get::<String>("message").unwrap_or_default(),
                e.get::<u64>("retry_after_ms").ok(),
            ))
        };
        Ok(Response {
            id: doc.get::<u64>("id").unwrap_or(0),
            epoch: doc.get::<u64>("epoch").unwrap_or(0),
            ok,
            result: doc.field("result").cloned().unwrap_or(Json::Null),
            error,
        })
    }
}
