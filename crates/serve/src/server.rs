//! The daemon: MVCC snapshot publication, the connection supervisor, and
//! request dispatch.
//!
//! # MVCC read path
//!
//! The committed epoch lives in a [`SnapshotCell`]: an
//! `RwLock<Arc<TimingSnapshot>>` where the read lock is held only long
//! enough to clone the `Arc` (nanoseconds) — never across a propagation.
//! Readers therefore observe a wholly-consistent epoch, old or new and
//! never a blend, while the single writer mutates the *next* epoch inside
//! `Mutex<InstaEngine>` and publishes with one pointer swap after a
//! successful commit. A failed or deadline-cancelled write rolls back via
//! the session layer and publishes nothing: readers cannot observe a
//! half-committed epoch by construction.
//!
//! # Failure containment
//!
//! Each connection runs in its own thread; dispatch is wrapped in
//! `catch_unwind`, so a panic poisons at most that request — the session
//! guard rolls the engine back during unwind, mutex poisoning is
//! tolerated everywhere (`into_inner`), and the client gets a typed
//! `internal` error instead of a dead socket. See DESIGN.md "Service
//! architecture" for the full failure matrix.

use crate::admission::{Admission, Rejection, ServeConfig, ServeCounters, Tier};
use crate::protocol::{
    code, err_response, ok_response, read_frame, write_frame, FrameError, Op, OpKind, Request,
    PROTOCOL_VERSION,
};
use crate::recovery::{self, RecoveryReport};
use crate::wal::{Durability, DurabilityConfig};
use insta_engine::{
    CancelToken, CornerTransform, Deadline, DeltaSet, EngineDurableState, IncidentLog,
    InstaEngine, InstaError, ModeMask, Scenario, ServiceIncident, TimingSnapshot, WriterOp,
};
use insta_refsta::eco::ArcDelta;
use insta_support::json::{obj, Json, ToJson};
use insta_support::obs::Recorder;
use std::io::{BufReader, Read, Write};
use std::net::TcpListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};
use std::time::{Duration, Instant};

/// Locks a mutex, tolerating poisoning: a panic in another connection
/// must not cascade — the session layer already rolled the engine back
/// during that thread's unwind, so the data behind the lock is sound.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// The published committed epoch. `load` is the entire read path.
#[derive(Debug)]
pub struct SnapshotCell {
    inner: RwLock<Arc<TimingSnapshot>>,
    /// Epoch watch for `min_epoch` waiters: publish bumps the watched
    /// value under the mutex and notifies, so waiters wake on the commit
    /// they asked for instead of polling (ROADMAP item 1 leftover).
    watch: Mutex<u64>,
    publish_cv: Condvar,
}

impl SnapshotCell {
    fn new(snap: TimingSnapshot) -> Self {
        let epoch = snap.epoch();
        SnapshotCell {
            inner: RwLock::new(Arc::new(snap)),
            watch: Mutex::new(epoch),
            publish_cv: Condvar::new(),
        }
    }

    /// Clones the current epoch's `Arc` — the only thing the read lock
    /// ever covers.
    pub fn load(&self) -> Arc<TimingSnapshot> {
        Arc::clone(&self.inner.read().unwrap_or_else(|p| p.into_inner()))
    }

    /// Atomically replaces the published epoch. Monotonic: a snapshot
    /// that is not strictly newer than the published one is dropped, so
    /// the published epoch can never regress — even if two publishes
    /// ever race, the older writer loses.
    fn publish(&self, snap: TimingSnapshot) {
        let epoch = snap.epoch();
        {
            let mut cur = self.inner.write().unwrap_or_else(|p| p.into_inner());
            if epoch > cur.epoch() {
                *cur = Arc::new(snap);
            }
        }
        // The snapshot is visible before the watch moves, so a waiter
        // released by this publish always loads an epoch ≥ what it
        // waited for.
        let mut w = lock(&self.watch);
        if epoch > *w {
            *w = epoch;
        }
        drop(w);
        self.publish_cv.notify_all();
    }

    /// Blocks until the published epoch reaches `min_epoch` or `give_up`
    /// says to stop, waking on publish (with a coarse timeout slice so
    /// shutdown and deadlines are honored even if no commit ever lands).
    /// Returns whether the epoch arrived.
    fn wait_for_epoch(&self, min_epoch: u64, mut give_up: impl FnMut() -> bool) -> bool {
        let mut w = lock(&self.watch);
        loop {
            if *w >= min_epoch {
                return true;
            }
            if give_up() {
                return false;
            }
            let (g, _timeout) = self
                .publish_cv
                .wait_timeout(w, Duration::from_millis(25))
                .unwrap_or_else(|p| p.into_inner());
            w = g;
        }
    }
}

/// A typed dispatch failure, rendered as an error response.
struct ErrReply {
    code: &'static str,
    message: String,
    retry_after_ms: Option<u64>,
}

impl ErrReply {
    fn new(code: &'static str, message: impl Into<String>) -> Self {
        ErrReply {
            code,
            message: message.into(),
            retry_after_ms: None,
        }
    }
}

struct Shared {
    cfg: ServeConfig,
    cell: SnapshotCell,
    writer: Mutex<InstaEngine>,
    admission: Admission,
    counters: ServeCounters,
    incidents: Mutex<IncidentLog>,
    journal: Mutex<Recorder>,
    shutdown: CancelToken,
    /// The durability layer (`None` = ephemeral daemon, PR 7 behavior).
    durability: Option<Durability>,
}

/// The timing service. Cheap to clone (an `Arc` handle) — hand clones to
/// connection threads.
#[derive(Clone)]
pub struct Server {
    shared: Arc<Shared>,
}

impl Server {
    /// Wraps an engine. The engine's current state (typically just after
    /// an initial `propagate`) becomes the first published epoch.
    pub fn new(engine: InstaEngine, cfg: ServeConfig) -> Self {
        Self::build(engine, cfg, None, &[])
    }

    /// Wraps an engine with durability: recovers the committed timeline
    /// from `durability.dir` (checkpoint restore + WAL replay through
    /// real sessions, torn tails truncated with typed incidents), then
    /// serves with every writer commit logged-and-fsynced before it
    /// publishes. The engine must be freshly built from the same
    /// design/config the directory's artifacts were written against.
    ///
    /// # Errors
    ///
    /// I/O failures opening the directory or WAL. Recovery *findings*
    /// (stale checkpoints, torn tails) are not errors — they surface in
    /// the returned [`RecoveryReport`] and the incident ring.
    pub fn with_durability(
        mut engine: InstaEngine,
        cfg: ServeConfig,
        durability: DurabilityConfig,
    ) -> std::io::Result<(Self, RecoveryReport)> {
        let report = recovery::recover(&mut engine, &durability)?;
        let layer = Durability::open(durability)?;
        let server = Self::build(engine, cfg, Some(layer), &report.incidents);
        Ok((server, report))
    }

    fn build(
        engine: InstaEngine,
        cfg: ServeConfig,
        durability: Option<Durability>,
        seed_incidents: &[ServiceIncident],
    ) -> Self {
        let cell = SnapshotCell::new(engine.snapshot());
        let admission = Admission::new(&cfg);
        let mut log = IncidentLog::with_capacity(cfg.incident_log_cap);
        for inc in seed_incidents {
            log.record_service(inc.clone());
        }
        let journal = Mutex::new(Recorder::with_capacity(cfg.journal_capacity));
        Server {
            shared: Arc::new(Shared {
                cfg,
                cell,
                writer: Mutex::new(engine),
                admission,
                counters: ServeCounters::default(),
                incidents: Mutex::new(log),
                journal,
                shutdown: CancelToken::new(),
                durability,
            }),
        }
    }

    /// The durability layer, when enabled (test/bench observability).
    pub fn durability(&self) -> Option<&Durability> {
        self.shared.durability.as_ref()
    }

    /// The shutdown token: cancel it (or send a `shutdown` request) to
    /// wind the daemon down.
    pub fn shutdown_token(&self) -> CancelToken {
        self.shared.shutdown.clone()
    }

    /// The currently published snapshot.
    pub fn snapshot(&self) -> Arc<TimingSnapshot> {
        self.shared.cell.load()
    }

    /// The service counters.
    pub fn counters(&self) -> &ServeCounters {
        &self.shared.counters
    }

    /// Current degradation tier.
    pub fn tier(&self) -> Tier {
        self.shared.admission.tier()
    }

    /// Serves one connection until EOF, lost frame sync, write failure,
    /// or shutdown. Never panics out: dispatch runs under `catch_unwind`.
    pub fn handle_connection<R: Read, W: Write>(&self, reader: R, mut writer: W) {
        let sh = &self.shared;
        sh.counters.connections_opened.fetch_add(1, Ordering::Relaxed);
        let mut reader = BufReader::new(reader);
        loop {
            if sh.shutdown.is_cancelled() {
                break;
            }
            let body = match read_frame(&mut reader, sh.cfg.max_frame_bytes) {
                Ok(b) => b,
                Err(FrameError::Eof) => break,
                Err(e @ FrameError::BadHeader(_)) => {
                    // Frame sync is lost: reply once (best effort), close.
                    sh.counters.rejected_protocol.fetch_add(1, Ordering::Relaxed);
                    self.record_incident(0, code::PROTOCOL, &e.to_string());
                    let epoch = sh.cell.load().epoch();
                    let _ = write_frame(
                        &mut writer,
                        &err_response(0, epoch, code::PROTOCOL, &e.to_string(), None),
                    );
                    break;
                }
                Err(e @ FrameError::Truncated { .. }) => {
                    // The stream died mid-frame; nobody is listening for
                    // a reply, but the incident is recorded.
                    sh.counters.rejected_protocol.fetch_add(1, Ordering::Relaxed);
                    self.record_incident(0, code::PROTOCOL, &e.to_string());
                    break;
                }
                Err(e @ FrameError::Io(_)) => {
                    self.record_incident(0, code::PROTOCOL, &e.to_string());
                    break;
                }
            };
            let (response, close) = self.handle_request(&body);
            if write_frame(&mut writer, &response).is_err() {
                break;
            }
            if close {
                break;
            }
        }
        sh.counters.connections_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// Serves stdin/stdout — the `insta-serve` default transport.
    pub fn serve_stdio(&self) {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        self.handle_connection(stdin.lock(), stdout.lock());
    }

    /// Accept loop: one thread per connection, until the shutdown token
    /// fires. The listener runs nonblocking with a short poll so a
    /// `shutdown` request winds the loop down promptly — a blocking
    /// accept would otherwise pin the daemon until one more connection
    /// happened to arrive.
    pub fn serve_tcp(&self, listener: TcpListener) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        loop {
            if self.shared.shutdown.is_cancelled() {
                break;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    // Connection threads want blocking reads — only the
                    // accept itself polls.
                    stream.set_nonblocking(false)?;
                    let peer = stream.try_clone()?;
                    let server = self.clone();
                    std::thread::spawn(move || server.handle_connection(peer, stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    fn record_incident(&self, request_id: u64, category: &'static str, message: &str) {
        lock(&self.shared.incidents).record_service(ServiceIncident {
            request_id,
            category,
            message: message.to_owned(),
        });
    }

    /// Decodes, admits, dispatches (panic-isolated), and renders one
    /// request. Returns `(response body, close connection)`.
    fn handle_request(&self, body: &[u8]) -> (String, bool) {
        let sh = &self.shared;
        let started = Instant::now();
        let req = match Request::decode(body) {
            Ok(r) => r,
            Err(e) => {
                // id 0 means the body never yielded a request object —
                // that's a protocol error; a decoded-but-invalid request
                // is the client's bug.
                let code = if e.id == 0 { code::PROTOCOL } else { code::BAD_REQUEST };
                sh.counters.rejected_protocol.fetch_add(1, Ordering::Relaxed);
                self.record_incident(e.id, code, &e.message);
                let epoch = sh.cell.load().epoch();
                return (err_response(e.id, epoch, code, &e.message, None), false);
            }
        };
        // Version gate (satellite): a client that declares a different
        // protocol generation is refused before dispatch — loudly and
        // typed, not with a decode error three ops later.
        if let Some(v) = req.version {
            if v != PROTOCOL_VERSION {
                let msg = format!(
                    "client speaks protocol version {v}, server speaks {PROTOCOL_VERSION}"
                );
                sh.counters.rejected_protocol.fetch_add(1, Ordering::Relaxed);
                self.record_incident(req.id, code::VERSION_MISMATCH, &msg);
                let epoch = sh.cell.load().epoch();
                return (
                    err_response(req.id, epoch, code::VERSION_MISMATCH, &msg, None),
                    false,
                );
            }
        }
        let outcome = self.admit_and_execute(&req);
        let epoch = sh.cell.load().epoch();
        let ok = outcome.is_ok();
        lock(&sh.journal).event(
            req.op.name(),
            &[
                ("id", req.id as f64),
                ("ok", if ok { 1.0 } else { 0.0 }),
                ("us", started.elapsed().as_secs_f64() * 1e6),
                ("epoch", epoch as f64),
            ],
        );
        match outcome {
            Ok(result) => (ok_response(req.id, epoch, result), req.op == Op::Shutdown),
            Err(e) => {
                self.note_failure(&req, &e);
                (
                    err_response(req.id, epoch, e.code, &e.message, e.retry_after_ms),
                    false,
                )
            }
        }
    }

    /// Counts and records a typed failure (satellite: every server-side
    /// rejection lands in the incident ring with its request id).
    fn note_failure(&self, req: &Request, e: &ErrReply) {
        let c = &self.shared.counters;
        match e.code {
            code::OVERLOADED => ServeCounters::bump(&c.rejected_overload),
            code::SHED => ServeCounters::bump(&c.shed),
            code::DEADLINE => ServeCounters::bump(&c.deadline_cancelled),
            code::DEADLINE_OVERSHOOT => ServeCounters::bump(&c.deadline_overshoot),
            code::INTERNAL => ServeCounters::bump(&c.panics_isolated),
            code::BAD_REQUEST | code::PROTOCOL => ServeCounters::bump(&c.rejected_protocol),
            _ => {}
        }
        self.record_incident(req.id, e.code, &e.message);
    }

    fn admit_and_execute(&self, req: &Request) -> Result<Json, ErrReply> {
        let sh = &self.shared;
        let kind = req.op.kind();
        if sh.shutdown.is_cancelled() && req.op != Op::Shutdown {
            return Err(ErrReply::new(code::SHUTTING_DOWN, "daemon is winding down"));
        }
        if matches!(req.op, Op::DebugStall | Op::DebugPanic) && !sh.cfg.enable_debug_ops {
            return Err(ErrReply::new(
                code::BAD_REQUEST,
                "debug ops are disabled (ServeConfig::enable_debug_ops)",
            ));
        }
        let _ticket = sh.admission.try_admit(kind).map_err(|r| match r {
            Rejection::Overloaded { retry_after_ms } => ErrReply {
                code: code::OVERLOADED,
                message: format!(
                    "in-flight cap {} reached; back off {retry_after_ms}ms",
                    sh.cfg.max_inflight
                ),
                retry_after_ms: Some(retry_after_ms),
            },
            Rejection::Shed => ErrReply {
                code: code::SHED,
                message: format!(
                    "heavy work shed at tier {}; retry when pressure drops",
                    sh.admission.tier().name()
                ),
                retry_after_ms: Some(sh.cfg.retry_after_ms * 4),
            },
        })?;
        ServeCounters::bump(&sh.counters.accepted);
        let deadline_ms = req.deadline_ms.unwrap_or(sh.cfg.default_deadline_ms);
        let deadline =
            (deadline_ms > 0).then(|| Deadline::after(Duration::from_millis(deadline_ms)));

        // The supervisor: a panicking op poisons only this request.
        let result = catch_unwind(AssertUnwindSafe(|| {
            self.execute(req, deadline.as_ref())
        }))
        .unwrap_or_else(|payload| {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_owned());
            Err(ErrReply::new(
                code::INTERNAL,
                format!("panic isolated by connection supervisor: {msg}"),
            ))
        });

        // Coarse wall-clock backstop (satellite): the per-level polls can
        // only cancel *between* levels; a read that finished late still
        // violated its budget and must say so. Writers are exempt here —
        // they check *before* commit (and a committed result is a
        // success, however late). Control ops (ping/stats/incidents/
        // journal/shutdown) are exempt too: an observability scrape or a
        // shutdown ack that computed a result must deliver it, not
        // discard it for arriving late.
        if matches!(kind, OpKind::Read | OpKind::Heavy) {
            if let (Ok(_), Some(d)) = (&result, &deadline) {
                if d.expired() {
                    return Err(ErrReply::new(
                        code::DEADLINE_OVERSHOOT,
                        format!("completed past the {deadline_ms}ms budget"),
                    ));
                }
            }
        }
        result
    }

    fn execute(&self, req: &Request, deadline: Option<&Deadline>) -> Result<Json, ErrReply> {
        match req.op {
            Op::Ping => Ok(obj([
                ("pong", Json::Bool(true)),
                ("version", PROTOCOL_VERSION.to_json()),
            ])),
            Op::Stats => Ok(self.stats()),
            Op::ReportSlack => self.report_slack(req, deadline),
            Op::ReportAt => self.report_at(req),
            Op::PerfReport => Ok(self.shared.cell.load().perf_report().to_json()),
            Op::Incidents => Ok(self.incidents()),
            Op::Journal => Ok(Json::Str(lock(&self.shared.journal).export_jsonl())),
            Op::Update | Op::Propagate => self.write_epoch(req, deadline),
            Op::Batch => self.batch(req, deadline),
            Op::Gradient => self.gradient(req, deadline),
            Op::Shutdown => {
                self.shared.shutdown.cancel();
                Ok(obj([("stopping", Json::Bool(true))]))
            }
            Op::DebugStall => {
                let ms = req.params.get::<u64>("ms").unwrap_or(10).min(10_000);
                std::thread::sleep(Duration::from_millis(ms));
                Ok(obj([("stalled_ms", ms.to_json())]))
            }
            Op::DebugPanic => panic!("debug_panic requested by request {}", req.id),
        }
    }

    /// Engine + service counters, tier, and ring occupancy (satellite:
    /// the `stats` surface).
    fn stats(&self) -> Json {
        let sh = &self.shared;
        let snap = sh.cell.load();
        let ec = snap.counters();
        let engine = obj([
            ("epoch", ec.epoch.to_json()),
            ("sessions_begun", ec.sessions_begun.to_json()),
            ("sessions_committed", ec.sessions_committed.to_json()),
            ("sessions_rolled_back", ec.sessions_rolled_back.to_json()),
            ("sessions_cancelled", ec.sessions_cancelled.to_json()),
            ("degraded_passes", ec.degraded_passes.to_json()),
            ("incremental_updates", ec.incremental_updates.to_json()),
            ("drift_updates", ec.drift_updates.to_json()),
            ("drift_mass", ec.drift_mass.to_json()),
            ("incidents_total", ec.incidents_total.to_json()),
            ("incidents_dropped", ec.incidents_dropped.to_json()),
            ("batches", ec.batches.to_json()),
            ("batch_scenarios", ec.batch_scenarios.to_json()),
            ("batch_quarantined", ec.batch_quarantined.to_json()),
            ("mcmm_evaluations", ec.mcmm_evaluations.to_json()),
            ("mcmm_corner_lanes", ec.mcmm_corner_lanes.to_json()),
            ("mcmm_deduped", ec.mcmm_deduped.to_json()),
            (
                "stat_backend",
                Json::Str(ec.stat_backend.name().to_owned()),
            ),
            ("stat_bins", (ec.stat_bins as u64).to_json()),
        ]);
        let service = Json::Obj(
            sh.counters
                .rows()
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.to_json()))
                .collect(),
        );
        let durability = match &sh.durability {
            None => obj([("enabled", Json::Bool(false))]),
            Some(d) => {
                let mut rows = vec![
                    ("enabled", Json::Bool(true)),
                    ("fsync", Json::Bool(d.fsync_enabled())),
                ];
                let stat_rows = d.stats.rows();
                rows.extend(stat_rows.iter().map(|(k, v)| (*k, v.to_json())));
                obj(rows)
            }
        };
        let log = lock(&sh.incidents);
        obj([
            ("epoch", snap.epoch().to_json()),
            ("version", PROTOCOL_VERSION.to_json()),
            ("tier", Json::Str(sh.admission.tier().name().to_owned())),
            ("pressure", sh.admission.pressure().to_json()),
            ("inflight", (sh.admission.inflight() as u64).to_json()),
            ("engine", engine),
            ("service", service),
            ("durability", durability),
            ("service_incidents", (log.total()).to_json()),
        ])
    }

    fn incidents(&self) -> Json {
        let log = lock(&self.shared.incidents);
        let rows: Vec<Json> = log
            .services()
            .map(|s| {
                obj([
                    ("request_id", s.request_id.to_json()),
                    ("category", Json::Str(s.category.to_owned())),
                    ("message", Json::Str(s.message.clone())),
                ])
            })
            .collect();
        obj([
            ("total", log.total().to_json()),
            ("dropped", log.dropped().to_json()),
            ("incidents", Json::Arr(rows)),
        ])
    }

    /// Resolves the snapshot a read should see: the current epoch, or —
    /// when `min_epoch` asks for a commit that hasn't landed — a bounded
    /// wait, degraded at [`Tier::SnapshotOnly`] to an immediate stale
    /// answer flagged `degraded: true`.
    fn resolve_snapshot(
        &self,
        min_epoch: u64,
        deadline: Option<&Deadline>,
    ) -> Result<(Arc<TimingSnapshot>, bool), ErrReply> {
        let sh = &self.shared;
        let snap = sh.cell.load();
        if snap.epoch() >= min_epoch {
            return Ok((snap, false));
        }
        if sh.admission.tier() >= Tier::SnapshotOnly {
            ServeCounters::bump(&sh.counters.degraded_reports);
            return Ok((snap, true));
        }
        // Block on the publish condvar (satellite: no polling loop) — a
        // committing writer wakes every waiter; the coarse timeout slice
        // inside `wait_for_epoch` only bounds how long shutdown or an
        // expired deadline can go unnoticed when no commit ever lands.
        let cap = Deadline::after(Duration::from_millis(sh.cfg.max_epoch_wait_ms.max(1)));
        let arrived = sh.cell.wait_for_epoch(min_epoch, || {
            sh.shutdown.is_cancelled()
                || deadline.is_some_and(|d| d.expired())
                || cap.expired()
        });
        if arrived {
            return Ok((sh.cell.load(), false));
        }
        if sh.shutdown.is_cancelled() {
            return Err(ErrReply::new(code::SHUTTING_DOWN, "daemon is winding down"));
        }
        Err(ErrReply::new(
            code::DEADLINE,
            format!(
                "epoch {min_epoch} not committed within the wait budget \
                 (published epoch {})",
                sh.cell.load().epoch()
            ),
        ))
    }

    fn report_slack(&self, req: &Request, deadline: Option<&Deadline>) -> Result<Json, ErrReply> {
        let min_epoch = req.params.get::<u64>("min_epoch").unwrap_or(0);
        let (snap, degraded) = self.resolve_snapshot(min_epoch, deadline)?;
        let report = snap.report().ok_or_else(|| {
            ErrReply::new(
                code::BAD_REQUEST,
                "no committed report yet; send a propagate request first",
            )
        })?;
        let slacks: Vec<Json> = match req.params.field("endpoints") {
            Ok(eps) => {
                let idx = eps
                    .as_arr()
                    .map_err(|e| ErrReply::new(code::BAD_REQUEST, format!("endpoints: {e}")))?;
                let mut out = Vec::with_capacity(idx.len());
                for j in idx {
                    let i = j
                        .as_u64()
                        .map_err(|e| ErrReply::new(code::BAD_REQUEST, format!("endpoints: {e}")))?
                        as usize;
                    let s = report.slacks.get(i).ok_or_else(|| {
                        ErrReply::new(
                            code::BAD_REQUEST,
                            format!("endpoint {i} out of range ({} endpoints)", report.slacks.len()),
                        )
                    })?;
                    out.push(s.to_json());
                }
                out
            }
            Err(_) => report.slacks.iter().map(|s| s.to_json()).collect(),
        };
        Ok(obj([
            ("epoch", snap.epoch().to_json()),
            ("degraded", Json::Bool(degraded)),
            ("wns_ps", report.wns_ps.to_json()),
            ("tns_ps", report.tns_ps.to_json()),
            ("n_violations", (report.n_violations as u64).to_json()),
            ("slacks", Json::Arr(slacks)),
        ]))
    }

    fn report_at(&self, req: &Request) -> Result<Json, ErrReply> {
        let node = req
            .params
            .get::<u64>("node")
            .map_err(|e| ErrReply::new(code::BAD_REQUEST, format!("node: {e}")))?;
        let rf = req.params.get::<u64>("rf").unwrap_or(0) as usize;
        let snap = self.shared.cell.load();
        let arrival = snap.arrival_at(node as u32, rf);
        Ok(obj([
            ("epoch", snap.epoch().to_json()),
            ("reached", Json::Bool(arrival.is_some())),
            ("arrival", arrival.map_or(Json::Null, |a| a.to_json())),
        ]))
    }

    /// The writer path: `update` (apply deltas) or `propagate` (full
    /// refresh), committed transactionally and published atomically.
    fn write_epoch(&self, req: &Request, deadline: Option<&Deadline>) -> Result<Json, ErrReply> {
        let sh = &self.shared;
        let mut deltas = if req.op == Op::Update {
            parse_deltas(req.params.field("deltas").unwrap_or(&Json::Null))?
        } else {
            Vec::new()
        };
        let mut eng = lock(&sh.writer);
        let mut session = eng.begin_session().with_cancel(sh.shutdown.clone());
        if let Some(d) = deadline {
            session = session.with_deadline(d.remaining());
        }
        let outcome = if req.op == Op::Update {
            session.update_timing(&deltas)
        } else {
            session.propagate()
        };
        let report = outcome.map_err(map_engine_err)?;
        let (wns, tns, viol) = (report.wns_ps, report.tns_ps, report.n_violations);
        if sh.cfg.stall_writer_ms > 0 {
            // Test hook: a stall in the blind spot between the last
            // per-level poll and the commit decision.
            std::thread::sleep(Duration::from_millis(sh.cfg.stall_writer_ms));
        }
        if deadline.is_some_and(|d| d.expired()) {
            // The work finished but the budget is blown: commit would
            // publish a result the client already gave up on. Roll back —
            // never half-commit — and say exactly what happened.
            session.rollback();
            return Err(ErrReply::new(
                code::DEADLINE_OVERSHOOT,
                "propagation finished past the deadline; rolled back uncommitted",
            ));
        }
        // Durability point: the commit is appended to the WAL and synced
        // *before* it happens, so the log is a superset of anything a
        // client ever observed. An append failure rolls back — the
        // not-yet-durable epoch must never publish.
        if let Some(dur) = &sh.durability {
            let next_epoch = session.engine().epoch() + 1;
            let op = if req.op == Op::Update {
                WriterOp::Update(std::mem::take(&mut deltas))
            } else {
                WriterOp::Propagate
            };
            if let Err(e) = dur.log_commit(next_epoch, &op) {
                session.rollback();
                return Err(ErrReply::new(
                    code::DURABILITY,
                    format!("write-ahead log append failed: {e}; rolled back uncommitted"),
                ));
            }
        }
        let epoch = session.commit().map_err(map_engine_err)?;
        let snap = eng.snapshot();
        // Publish before releasing the writer lock: commit order and
        // publication order must agree, or a preempted writer could
        // publish its older epoch over a successor's newer one.
        sh.cell.publish(snap);
        if let Some(dur) = &sh.durability {
            // Checkpoint cadence, still under the writer lock so the
            // captured state is exactly the epoch just published. The
            // (full-state-clone) capture only happens on the commits the
            // cadence actually selects — off-cadence commits pay for the
            // WAL append alone. A checkpoint failure is an incident, not
            // a request failure — the WAL already holds the committed
            // record.
            if dur.checkpoint_due() {
                let state = EngineDurableState::capture(&eng);
                if let Err(e) = dur.write_checkpoint(&state, &sh.cell.load()) {
                    self.record_incident(
                        req.id,
                        code::DURABILITY,
                        &format!("checkpoint at epoch {epoch} failed: {e}"),
                    );
                }
            }
        }
        drop(eng);
        ServeCounters::bump(&sh.counters.snapshot_swaps);
        Ok(obj([
            ("epoch", epoch.to_json()),
            ("wns_ps", wns.to_json()),
            ("tns_ps", tns.to_json()),
            ("n_violations", (viol as u64).to_json()),
        ]))
    }

    fn batch(&self, req: &Request, deadline: Option<&Deadline>) -> Result<Json, ErrReply> {
        let sh = &self.shared;
        let scenarios_json = req
            .params
            .field("scenarios")
            .map_err(|e| ErrReply::new(code::BAD_REQUEST, format!("scenarios: {e}")))?
            .as_arr()
            .map_err(|e| ErrReply::new(code::BAD_REQUEST, format!("scenarios: {e}")))?;
        if scenarios_json.len() > sh.cfg.max_batch_scenarios {
            return Err(ErrReply::new(
                code::BAD_REQUEST,
                format!(
                    "{} scenarios exceeds the cap of {}",
                    scenarios_json.len(),
                    sh.cfg.max_batch_scenarios
                ),
            ));
        }
        let opts = insta_engine::BatchOptions {
            gradients: false,
            cancel: Some(sh.shutdown.clone()),
            deadline: deadline.map(|d| d.remaining()),
        };
        // `merged: true` asks for the MCMM worst-corner merge on top of
        // the per-scenario rows (protocol generation 2).
        let merged = matches!(
            req.params.field("merged").and_then(|v| v.as_bool()),
            Ok(true)
        );
        // Plain delta-array scenarios without a merge request take the
        // generation-1 path verbatim; scenario *objects* (deltas × corner
        // × mode) and merge requests go through the MCMM entry points.
        let legacy = !merged && scenarios_json.iter().all(|s| s.as_arr().is_ok());
        let (results, merged_json) = if legacy {
            let mut sets = Vec::with_capacity(scenarios_json.len());
            for s in scenarios_json {
                sets.push(DeltaSet::from(parse_deltas(s)?));
            }
            let mut eng = lock(&sh.writer);
            let results = eng.evaluate_batch_with(&sets, &opts);
            drop(eng);
            (results, None)
        } else {
            let mut scs = Vec::with_capacity(scenarios_json.len());
            for s in scenarios_json {
                scs.push(parse_scenario(s)?);
            }
            let mut eng = lock(&sh.writer);
            if merged {
                let rep = eng.evaluate_mcmm_with(&scs, &opts);
                drop(eng);
                let m = obj([
                    ("wns_ps", rep.merged_wns_ps.to_json()),
                    ("tns_ps", rep.merged_tns_ps.to_json()),
                    ("n_violations", (rep.merged_violations as u64).to_json()),
                ]);
                (rep.scenarios, Some(m))
            } else {
                let results = eng.evaluate_scenarios_with(&scs, &opts);
                drop(eng);
                (results, None)
            }
        };
        let rows: Vec<Json> = results
            .iter()
            .map(|r| match &r.outcome {
                Ok(rep) => obj([
                    ("scenario", (r.scenario as u64).to_json()),
                    ("ok", Json::Bool(true)),
                    ("wns_ps", rep.wns_ps.to_json()),
                    ("tns_ps", rep.tns_ps.to_json()),
                    ("n_violations", (rep.n_violations as u64).to_json()),
                ]),
                Err(e) => obj([
                    ("scenario", (r.scenario as u64).to_json()),
                    ("ok", Json::Bool(false)),
                    ("error", Json::Str(e.category().to_owned())),
                ]),
            })
            .collect();
        let mut fields = vec![("scenarios", Json::Arr(rows))];
        if let Some(m) = merged_json {
            fields.push(("merged", m));
        }
        Ok(obj(fields))
    }

    /// The differentiable pass: LSE forward + TNS backward inside a
    /// rolled-back session — the committed epoch is never perturbed.
    fn gradient(&self, req: &Request, deadline: Option<&Deadline>) -> Result<Json, ErrReply> {
        let sh = &self.shared;
        let mut eng = lock(&sh.writer);
        let mut session = eng.begin_session().with_cancel(sh.shutdown.clone());
        if let Some(d) = deadline {
            session = session.with_deadline(d.remaining());
        }
        let run = session
            .forward_lse()
            .and_then(|()| session.backward_tns());
        let grads = match run {
            Ok(()) => session.engine().arc_gradients(),
            Err(e) => {
                session.rollback();
                return Err(map_engine_err(e));
            }
        };
        session.rollback();
        drop(eng);
        let result = match req.params.field("arcs") {
            Ok(list) => {
                let idx = list
                    .as_arr()
                    .map_err(|e| ErrReply::new(code::BAD_REQUEST, format!("arcs: {e}")))?;
                let mut vals = Vec::with_capacity(idx.len());
                for j in idx {
                    let a = j
                        .as_u64()
                        .map_err(|e| ErrReply::new(code::BAD_REQUEST, format!("arcs: {e}")))?
                        as usize;
                    let g = grads.get(a).ok_or_else(|| {
                        ErrReply::new(
                            code::BAD_REQUEST,
                            format!("arc {a} out of range ({} arcs)", grads.len()),
                        )
                    })?;
                    vals.push(g.to_json());
                }
                obj([
                    ("n_arcs", (grads.len() as u64).to_json()),
                    ("gradients", Json::Arr(vals)),
                ])
            }
            Err(_) => {
                let l1: f64 = grads.iter().map(|g| g.abs()).sum();
                let max_abs = grads.iter().fold(0.0_f64, |m, g| m.max(g.abs()));
                obj([
                    ("n_arcs", (grads.len() as u64).to_json()),
                    ("l1", l1.to_json()),
                    ("max_abs", max_abs.to_json()),
                ])
            }
        };
        Ok(result)
    }
}

/// Maps a typed engine error onto the wire: a cooperative cancellation is
/// the deadline doing its job (the session already rolled back); anything
/// else is surfaced with its category.
fn map_engine_err(e: InstaError) -> ErrReply {
    match &e {
        InstaError::Cancelled { kernel, level, .. } => ErrReply::new(
            code::DEADLINE,
            format!("cancelled in {kernel} kernel at level {level}; rolled back"),
        ),
        other => ErrReply::new(
            code::ENGINE,
            format!("{} error: {other}", other.category()),
        ),
    }
}

/// Decodes one `batch` scenario: the legacy delta array, or the MCMM
/// object `{"deltas": [...], "corner": {"mean_scale", "mean_offset_ps",
/// "sigma_scale", "sigma_offset_ps"}, "mode": {"disabled": [ep, ...]}}`
/// — every field optional, corner fields defaulting to the identity.
fn parse_scenario(j: &Json) -> Result<Scenario, ErrReply> {
    let bad = |m: String| ErrReply::new(code::BAD_REQUEST, m);
    if j.as_arr().is_ok() {
        return Ok(Scenario::from(parse_deltas(j)?));
    }
    let mut sc = Scenario::default();
    if let Ok(d) = j.field("deltas") {
        sc.deltas = parse_deltas(d)?;
    }
    if let Ok(c) = j.field("corner") {
        let f = |key: &'static str, dflt: f64| -> Result<f64, ErrReply> {
            match c.field(key) {
                Ok(v) => v.as_f64().map_err(|e| bad(format!("corner {key}: {e}"))),
                Err(_) => Ok(dflt),
            }
        };
        sc.corner = Some(CornerTransform {
            mean_scale: f("mean_scale", 1.0)?,
            mean_offset_ps: f("mean_offset_ps", 0.0)?,
            sigma_scale: f("sigma_scale", 1.0)?,
            sigma_offset_ps: f("sigma_offset_ps", 0.0)?,
        });
    }
    if let Ok(m) = j.field("mode") {
        let list = m
            .field("disabled")
            .and_then(|v| v.as_arr())
            .map_err(|e| bad(format!("mode disabled: {e}")))?;
        let mut eps = Vec::with_capacity(list.len());
        for v in list {
            eps.push(v.as_u64().map_err(|e| bad(format!("mode disabled: {e}")))? as usize);
        }
        sc.mode = Some(ModeMask::disabling(eps));
    }
    Ok(sc)
}

/// Decodes `[{"arc":N,"mean":[r,f],"sigma":[r,f]}, ...]`.
fn parse_deltas(j: &Json) -> Result<Vec<ArcDelta>, ErrReply> {
    let bad = |m: String| ErrReply::new(code::BAD_REQUEST, m);
    let arr = j
        .as_arr()
        .map_err(|e| bad(format!("deltas: {e}")))?;
    let pair = |d: &Json, key: &str| -> Result<[f64; 2], ErrReply> {
        let v = d
            .field(key)
            .and_then(|f| f.as_arr())
            .map_err(|e| bad(format!("delta {key}: {e}")))?;
        if v.len() != 2 {
            return Err(bad(format!("delta {key}: want [rise, fall]")));
        }
        Ok([
            v[0].as_f64().map_err(|e| bad(format!("delta {key}: {e}")))?,
            v[1].as_f64().map_err(|e| bad(format!("delta {key}: {e}")))?,
        ])
    };
    let mut out = Vec::with_capacity(arr.len());
    for d in arr {
        out.push(ArcDelta {
            arc: d
                .get::<u64>("arc")
                .map_err(|e| bad(format!("delta arc: {e}")))? as u32,
            mean: pair(d, "mean")?,
            sigma: pair(d, "sigma")?,
        });
    }
    Ok(out)
}
