//! `insta-serve` — the timing daemon.
//!
//! ```text
//! insta-serve [--snapshot FILE | --gen NAME:SEED] [--k K] [--tcp ADDR]
//!             [--max-inflight N] [--default-deadline-ms MS] [--debug-ops]
//!             [--durability DIR] [--checkpoint-every N] [--no-fsync]
//! ```
//!
//! The engine is initialized from an exported `InstaInit` JSON snapshot
//! (`--snapshot`) or a generated design (`--gen`, default
//! `small:42`), propagated once, and served over stdin/stdout — or TCP
//! with `--tcp 127.0.0.1:7117`.
//!
//! With `--durability DIR` the daemon recovers the committed timeline
//! from DIR on startup (checkpoint + write-ahead-log replay) and makes
//! every writer commit durable before publishing it — a `kill -9` at any
//! instant loses no committed epoch. The same design flags
//! (`--gen`/`--snapshot`/`--k`) must be passed on restart.

use insta_engine::{InstaConfig, InstaEngine};
use insta_refsta::export::load_init;
use insta_serve::{DurabilityConfig, ServeConfig, Server};

fn usage(err: &str) -> ! {
    eprintln!("insta-serve: {err}");
    eprintln!(
        "usage: insta-serve [--snapshot FILE | --gen NAME:SEED] [--k K] [--tcp ADDR]\n\
         \x20                  [--max-inflight N] [--default-deadline-ms MS] [--debug-ops]\n\
         \x20                  [--durability DIR] [--checkpoint-every N] [--no-fsync]"
    );
    std::process::exit(2);
}

fn main() {
    let mut snapshot: Option<String> = None;
    let mut gen_spec = String::from("small:42");
    let mut k: usize = 8;
    let mut tcp: Option<String> = None;
    let mut cfg = ServeConfig::default();
    let mut durability_dir: Option<String> = None;
    let mut checkpoint_every: Option<u64> = None;
    let mut fsync = true;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| args.next().unwrap_or_else(|| usage(&format!("{name} needs a value")));
        match a.as_str() {
            "--snapshot" => snapshot = Some(val("--snapshot")),
            "--gen" => gen_spec = val("--gen"),
            "--k" => k = val("--k").parse().unwrap_or_else(|_| usage("--k wants an integer")),
            "--tcp" => tcp = Some(val("--tcp")),
            "--max-inflight" => {
                cfg.max_inflight = val("--max-inflight")
                    .parse()
                    .unwrap_or_else(|_| usage("--max-inflight wants an integer"))
            }
            "--default-deadline-ms" => {
                cfg.default_deadline_ms = val("--default-deadline-ms")
                    .parse()
                    .unwrap_or_else(|_| usage("--default-deadline-ms wants an integer"))
            }
            "--debug-ops" => cfg.enable_debug_ops = true,
            "--durability" => durability_dir = Some(val("--durability")),
            "--checkpoint-every" => {
                checkpoint_every = Some(
                    val("--checkpoint-every")
                        .parse()
                        .unwrap_or_else(|_| usage("--checkpoint-every wants an integer")),
                )
            }
            "--no-fsync" => fsync = false,
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown flag {other:?}")),
        }
    }

    let init = match &snapshot {
        Some(path) => load_init(path).unwrap_or_else(|e| usage(&format!("loading {path}: {e}"))),
        None => {
            let (name, seed) = gen_spec
                .split_once(':')
                .unwrap_or_else(|| usage("--gen wants NAME:SEED"));
            let seed: u64 = seed.parse().unwrap_or_else(|_| usage("--gen seed wants an integer"));
            let gen = match name {
                "small" => insta_netlist::generator::GeneratorConfig::small(name, seed),
                "medium" => insta_netlist::generator::GeneratorConfig::medium(name, seed),
                other => usage(&format!("unknown generator {other:?} (small|medium)")),
            };
            let design = insta_netlist::generator::generate_design(&gen);
            let mut sta = insta_refsta::RefSta::new(&design, insta_refsta::StaConfig::default())
                .unwrap_or_else(|e| usage(&format!("reference STA: {e}")));
            sta.full_update(&design);
            sta.export_insta_init()
        }
    };
    let mut engine = InstaEngine::new(
        init,
        InstaConfig {
            top_k: k,
            ..InstaConfig::default()
        },
    )
    .unwrap_or_else(|e| usage(&format!("engine init: {e}")));
    engine.propagate();
    eprintln!(
        "insta-serve: engine ready — {} nodes, {} endpoints, epoch {}",
        engine.num_nodes(),
        engine.num_endpoints(),
        engine.epoch()
    );

    let server = match durability_dir {
        Some(dir) => {
            let mut dcfg = DurabilityConfig::new(dir);
            dcfg.fsync = fsync;
            if let Some(n) = checkpoint_every {
                dcfg.checkpoint_every = n;
            }
            let (server, report) = Server::with_durability(engine, cfg, dcfg)
                .unwrap_or_else(|e| usage(&format!("durability: {e}")));
            eprintln!(
                "insta-serve: recovered epoch {} (checkpoint {}, {} replayed, {} incident{})",
                report.recovered_epoch,
                report
                    .checkpoint_epoch
                    .map_or_else(|| "none".to_owned(), |e| e.to_string()),
                report.replayed,
                report.incidents.len(),
                if report.incidents.len() == 1 { "" } else { "s" },
            );
            for inc in &report.incidents {
                eprintln!("insta-serve: recovery incident: {}", inc.message);
            }
            server
        }
        None => Server::new(engine, cfg),
    };
    match tcp {
        Some(addr) => {
            let listener = std::net::TcpListener::bind(&addr)
                .unwrap_or_else(|e| usage(&format!("binding {addr}: {e}")));
            eprintln!("insta-serve: listening on {addr}");
            if let Err(e) = server.serve_tcp(listener) {
                eprintln!("insta-serve: accept loop failed: {e}");
                std::process::exit(1);
            }
        }
        None => server.serve_stdio(),
    }
}
