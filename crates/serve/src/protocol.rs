//! The wire protocol: length-prefixed JSON frames and the request /
//! response schema.
//!
//! A frame is an ASCII decimal byte count, a single `\n`, then exactly
//! that many bytes of JSON — trivially scriptable from a shell
//! (`printf '%d\n%s'`). The length line is the *frame-sync contract*:
//!
//! * a body that fails to parse as JSON (or as a request) is a
//!   *recoverable* protocol error — the frame boundary is still known, so
//!   the daemon replies with a typed error and keeps the connection;
//! * a length line that is not a sane number (or exceeds
//!   [`ServeConfig::max_frame_bytes`](crate::admission::ServeConfig)) loses
//!   sync — the daemon replies once and closes the connection;
//! * EOF mid-body is a truncated frame — the connection is dead.
//!
//! Requests are `{"id":N,"op":"...","deadline_ms":M?,"params":{...}?}`.
//! Responses are `{"id":N,"epoch":E,"ok":true,"result":{...}}` or
//! `{"id":N,"epoch":E,"ok":false,"error":{"code":"...","message":"...",
//! "retry_after_ms":K?}}`. The in-tree JSON writer prints `f64`s with
//! Rust's shortest round-trip formatting, so slack *bits* survive the
//! protocol — the MVCC tests compare raw `to_bits` over the wire.

use insta_support::json::{obj, parse, Json, ToJson};
use std::io::{self, BufRead, Write};

/// The protocol generation this daemon speaks. Clients may send it as an
/// optional `version` field on any request; a mismatch is rejected with
/// the typed [`code::VERSION_MISMATCH`] error before dispatch, and
/// `ping`/`stats` results carry the server's version so clients can probe
/// before committing work. Bump on any wire-incompatible change —
/// forward-compat companion to the versioned on-disk WAL/checkpoint
/// formats (see `crate::wal`).
///
/// # Version history
///
/// * **1** — initial wire protocol.
/// * **2** — MCMM scenario lanes on the `batch` op: each scenario may be
///   an *object* `{"deltas": [...], "corner": {mean_scale, mean_offset_ps,
///   sigma_scale, sigma_offset_ps}, "mode": {"disabled": [endpoints...]}}`
///   in addition to the generation-1 bare delta array, and an optional
///   boolean `merged` param requests worst-corner merging (adds a
///   `merged` object to the result). The extension is additive — every
///   generation-1 `batch` request is served unchanged — but the version
///   is bumped so clients can probe whether scenario objects are
///   understood rather than discover a typed `bad_params` at dispatch.
pub const PROTOCOL_VERSION: u64 = 2;

/// Longest accepted length line (decimal digits), a cheap guard against
/// a peer streaming an endless header.
const MAX_HEADER_DIGITS: usize = 20;

/// How reading the next frame failed.
#[derive(Debug)]
pub enum FrameError {
    /// Clean EOF at a frame boundary — the peer hung up politely.
    Eof,
    /// The length line was not a sane decimal count, or exceeded the
    /// configured frame cap. Frame sync is lost; close the connection.
    BadHeader(String),
    /// EOF or I/O failure mid-body: `got` of `expected` bytes arrived.
    Truncated { expected: usize, got: usize },
    /// Transport-level failure outside the framing logic.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Eof => write!(f, "end of stream"),
            FrameError::BadHeader(h) => write!(f, "unparseable frame header {h:?}"),
            FrameError::Truncated { expected, got } => {
                write!(f, "truncated frame: {got} of {expected} body bytes")
            }
            FrameError::Io(e) => write!(f, "frame i/o: {e}"),
        }
    }
}

/// Writes one `len\n body` frame and flushes.
pub fn write_frame(w: &mut impl Write, body: &str) -> io::Result<()> {
    write_frame_bytes(w, body.as_bytes())
}

/// Writes one `len\n body` frame from raw bytes and flushes. The body is
/// sent verbatim — it need not be UTF-8, so fault injectors can put
/// invalid encodings on the wire exactly as authored.
pub fn write_frame_bytes(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    w.write_all(format!("{}\n", body.len()).as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Reads one frame body, enforcing `max_bytes` on the declared length.
pub fn read_frame(r: &mut impl BufRead, max_bytes: usize) -> Result<Vec<u8>, FrameError> {
    // Read the header byte-by-byte so a lost-sync close never swallows
    // buffered bytes belonging to a later diagnosis.
    let mut header = Vec::with_capacity(8);
    loop {
        let mut b = [0u8; 1];
        match r.read(&mut b) {
            Ok(0) if header.is_empty() => return Err(FrameError::Eof),
            Ok(0) => {
                return Err(FrameError::BadHeader(
                    String::from_utf8_lossy(&header).into_owned(),
                ))
            }
            Ok(_) if b[0] == b'\n' => break,
            Ok(_) => {
                header.push(b[0]);
                if header.len() > MAX_HEADER_DIGITS {
                    return Err(FrameError::BadHeader(
                        String::from_utf8_lossy(&header).into_owned(),
                    ));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let text = String::from_utf8_lossy(&header).into_owned();
    let len: usize = match text.trim().parse() {
        Ok(n) => n,
        Err(_) => return Err(FrameError::BadHeader(text)),
    };
    if len > max_bytes {
        return Err(FrameError::BadHeader(format!("{len} > cap {max_bytes}")));
    }
    let mut body = vec![0u8; len];
    let mut got = 0;
    while got < len {
        match r.read(&mut body[got..]) {
            Ok(0) => {
                return Err(FrameError::Truncated {
                    expected: len,
                    got,
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(body)
}

/// Every operation the daemon understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Liveness probe.
    Ping,
    /// Engine + service counters and the current degradation tier. The
    /// `engine` object includes the active statistical backend
    /// (`stat_backend`, with `stat_bins` for the histogram backend).
    Stats,
    /// Endpoint slacks / WNS / TNS from the committed snapshot.
    ReportSlack,
    /// Worst arrival at one original node id.
    ReportAt,
    /// The committed levelized kernel breakdown.
    PerfReport,
    /// The service-side incident ring.
    Incidents,
    /// The request journal as JSONL.
    Journal,
    /// Writer: apply arc deltas, re-propagate, commit, publish.
    Update,
    /// Writer: full re-propagation, commit, publish.
    Propagate,
    /// Heavy: batched what-if scenarios (engine state untouched).
    Batch,
    /// Heavy: differentiable pass, returns ∂TNS/∂arc gradients.
    Gradient,
    /// Stop accepting work and wind the daemon down.
    Shutdown,
    /// Test hook: hold an admission slot for `params.ms` milliseconds.
    DebugStall,
    /// Test hook: panic inside dispatch (exercises the supervisor).
    DebugPanic,
}

/// Admission class of an [`Op`] — what the overload policy keys on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Always admitted, never counted: ping/stats/shutdown must work
    /// *especially* when the daemon is drowning.
    Control,
    /// Snapshot readers: admitted while in-flight slots remain.
    Read,
    /// Mutators: exempt from the cap and from shedding — the service
    /// degrades reads before it ever drops the writer.
    Writer,
    /// Batch / gradient: first to be shed under pressure.
    Heavy,
}

impl Op {
    /// Parses the wire name.
    pub fn from_name(name: &str) -> Option<Op> {
        Some(match name {
            "ping" => Op::Ping,
            "stats" => Op::Stats,
            "report_slack" => Op::ReportSlack,
            "report_at" => Op::ReportAt,
            "perf_report" => Op::PerfReport,
            "incidents" => Op::Incidents,
            "journal" => Op::Journal,
            "update" => Op::Update,
            "propagate" => Op::Propagate,
            "batch" => Op::Batch,
            "gradient" => Op::Gradient,
            "shutdown" => Op::Shutdown,
            "debug_stall" => Op::DebugStall,
            "debug_panic" => Op::DebugPanic,
        _ => return None,
        })
    }

    /// The wire name (also the journal event name).
    pub fn name(self) -> &'static str {
        match self {
            Op::Ping => "ping",
            Op::Stats => "stats",
            Op::ReportSlack => "report_slack",
            Op::ReportAt => "report_at",
            Op::PerfReport => "perf_report",
            Op::Incidents => "incidents",
            Op::Journal => "journal",
            Op::Update => "update",
            Op::Propagate => "propagate",
            Op::Batch => "batch",
            Op::Gradient => "gradient",
            Op::Shutdown => "shutdown",
            Op::DebugStall => "debug_stall",
            Op::DebugPanic => "debug_panic",
        }
    }

    /// The admission class.
    pub fn kind(self) -> OpKind {
        match self {
            Op::Ping | Op::Stats | Op::Shutdown | Op::Incidents | Op::Journal => OpKind::Control,
            Op::ReportSlack | Op::ReportAt | Op::PerfReport | Op::DebugStall | Op::DebugPanic => {
                OpKind::Read
            }
            Op::Update | Op::Propagate => OpKind::Writer,
            Op::Batch | Op::Gradient => OpKind::Heavy,
        }
    }
}

/// A decoded request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen correlation id, echoed on the response.
    pub id: u64,
    /// The operation.
    pub op: Op,
    /// Per-request wall-clock budget in milliseconds (`None` = the
    /// server default).
    pub deadline_ms: Option<u64>,
    /// The protocol generation the client speaks (`None` = don't check).
    /// Mismatches are rejected with [`code::VERSION_MISMATCH`].
    pub version: Option<u64>,
    /// Operation parameters (`Null` when absent).
    pub params: Json,
}

/// Why a request could not be decoded. The id is whatever could be
/// salvaged from the body (0 if none) so the error response and incident
/// still correlate.
#[derive(Debug)]
pub struct DecodeError {
    /// Salvaged request id, 0 when unknown.
    pub id: u64,
    /// Human-readable reason.
    pub message: String,
}

impl Request {
    /// Decodes a frame body.
    pub fn decode(body: &[u8]) -> Result<Request, DecodeError> {
        let text = std::str::from_utf8(body).map_err(|e| DecodeError {
            id: 0,
            message: format!("frame body is not UTF-8: {e}"),
        })?;
        let doc = parse(text).map_err(|e| DecodeError {
            id: 0,
            message: format!("malformed JSON: {e}"),
        })?;
        let id = doc.get::<u64>("id").unwrap_or(0);
        let fail = |message: String| DecodeError { id, message };
        if id == 0 {
            return Err(fail("missing or zero \"id\"".to_owned()));
        }
        let name: String = doc
            .get("op")
            .map_err(|e| fail(format!("missing \"op\": {e}")))?;
        let op = Op::from_name(&name).ok_or_else(|| fail(format!("unknown op {name:?}")))?;
        let deadline_ms = match doc.field("deadline_ms") {
            Ok(j) => Some(j.as_u64().map_err(|e| fail(format!("bad deadline_ms: {e}")))?),
            Err(_) => None,
        };
        let version = match doc.field("version") {
            Ok(j) => Some(j.as_u64().map_err(|e| fail(format!("bad version: {e}")))?),
            Err(_) => None,
        };
        let params = doc.field("params").cloned().unwrap_or(Json::Null);
        Ok(Request {
            id,
            op,
            deadline_ms,
            version,
            params,
        })
    }

    /// Encodes a request for the wire (the client side of
    /// [`decode`](Self::decode)).
    pub fn encode(&self) -> String {
        let mut pairs = vec![
            ("id", self.id.to_json()),
            ("op", Json::Str(self.op.name().to_owned())),
        ];
        if let Some(ms) = self.deadline_ms {
            pairs.push(("deadline_ms", ms.to_json()));
        }
        if let Some(v) = self.version {
            pairs.push(("version", v.to_json()));
        }
        if self.params != Json::Null {
            pairs.push(("params", self.params.clone()));
        }
        obj(pairs).to_string()
    }
}

/// Machine-readable failure codes carried in error responses.
pub mod code {
    /// Frame decoded but the body is not a valid request.
    pub const BAD_REQUEST: &str = "bad_request";
    /// The body is not valid JSON / UTF-8 (frame sync kept).
    pub const PROTOCOL: &str = "protocol";
    /// In-flight cap reached; retry after `retry_after_ms`.
    pub const OVERLOADED: &str = "overloaded";
    /// Heavy work rejected by the degradation tier.
    pub const SHED: &str = "shed";
    /// The deadline fired *during* the work (engine cancelled + rolled
    /// back — nothing was half-committed).
    pub const DEADLINE: &str = "deadline";
    /// The work finished but blew through its wall-clock budget before
    /// the result could be committed / sent (satellite: coarse
    /// wall-clock backstop over the per-level cancellation polls).
    pub const DEADLINE_OVERSHOOT: &str = "deadline_overshoot";
    /// A typed engine error ([`InstaError`](insta_engine::InstaError));
    /// the message carries the category.
    pub const ENGINE: &str = "engine";
    /// A panic was isolated by the connection supervisor.
    pub const INTERNAL: &str = "internal";
    /// The daemon is winding down.
    pub const SHUTTING_DOWN: &str = "shutting_down";
    /// The client's `version` field does not match
    /// [`PROTOCOL_VERSION`](super::PROTOCOL_VERSION); the message carries
    /// both generations.
    pub const VERSION_MISMATCH: &str = "version_mismatch";
    /// The durability layer could not make the commit durable (WAL append
    /// or fsync failed); the session was rolled back — nothing was
    /// committed or published.
    pub const DURABILITY: &str = "durability";
}

/// Builds a success response body.
pub fn ok_response(id: u64, epoch: u64, result: Json) -> String {
    obj([
        ("id", id.to_json()),
        ("epoch", epoch.to_json()),
        ("ok", Json::Bool(true)),
        ("result", result),
    ])
    .to_string()
}

/// Builds an error response body.
pub fn err_response(
    id: u64,
    epoch: u64,
    code: &'static str,
    message: &str,
    retry_after_ms: Option<u64>,
) -> String {
    let mut err = vec![
        ("code", Json::Str(code.to_owned())),
        ("message", Json::Str(message.to_owned())),
    ];
    if let Some(ms) = retry_after_ms {
        err.push(("retry_after_ms", ms.to_json()));
    }
    obj([
        ("id", id.to_json()),
        ("epoch", epoch.to_json()),
        ("ok", Json::Bool(false)),
        ("error", obj(err)),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"id\":1}").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = BufReader::new(&buf[..]);
        assert_eq!(read_frame(&mut r, 1 << 20).unwrap(), b"{\"id\":1}");
        assert_eq!(read_frame(&mut r, 1 << 20).unwrap(), b"");
        assert!(matches!(read_frame(&mut r, 1 << 20), Err(FrameError::Eof)));
    }

    #[test]
    fn bad_headers_and_truncation_are_typed() {
        let mut r = BufReader::new(&b"nonsense\n{}"[..]);
        assert!(matches!(
            read_frame(&mut r, 1 << 20),
            Err(FrameError::BadHeader(_))
        ));
        let mut r = BufReader::new(&b"5\nab"[..]);
        assert!(matches!(
            read_frame(&mut r, 1 << 20),
            Err(FrameError::Truncated {
                expected: 5,
                got: 2
            })
        ));
        // Over-cap lengths are refused before any allocation.
        let mut r = BufReader::new(&b"99999999\nx"[..]);
        assert!(matches!(
            read_frame(&mut r, 1024),
            Err(FrameError::BadHeader(_))
        ));
        // A header longer than any sane length line is cut off.
        let long = vec![b'9'; 64];
        let mut r = BufReader::new(&long[..]);
        assert!(matches!(
            read_frame(&mut r, 1 << 20),
            Err(FrameError::BadHeader(_))
        ));
    }

    #[test]
    fn requests_round_trip_and_reject_garbage() {
        let req = Request {
            id: 42,
            op: Op::ReportSlack,
            deadline_ms: Some(250),
            version: Some(PROTOCOL_VERSION),
            params: obj([("min_epoch", 3.0_f64.to_json())]),
        };
        let back = Request::decode(req.encode().as_bytes()).unwrap();
        assert_eq!(back.id, 42);
        assert_eq!(back.op, Op::ReportSlack);
        assert_eq!(back.deadline_ms, Some(250));
        assert_eq!(back.version, Some(PROTOCOL_VERSION));
        assert_eq!(back.params.get::<u64>("min_epoch").unwrap(), 3);

        // A version-less request decodes as "don't check".
        let bare = Request::decode(br#"{"id":5,"op":"ping"}"#).unwrap();
        assert_eq!(bare.version, None);
        // A non-numeric version is a decode error that keeps the id.
        let err = Request::decode(br#"{"id":6,"op":"ping","version":"one"}"#).unwrap_err();
        assert_eq!(err.id, 6);

        // Salvages the id even when the op is unknown.
        let err = Request::decode(br#"{"id":7,"op":"nope"}"#).unwrap_err();
        assert_eq!(err.id, 7);
        let err = Request::decode(b"{not json").unwrap_err();
        assert_eq!(err.id, 0);
        assert!(Request::decode(br#"{"op":"ping"}"#).is_err(), "id required");
    }

    #[test]
    fn every_op_name_round_trips_and_has_a_kind() {
        for op in [
            Op::Ping,
            Op::Stats,
            Op::ReportSlack,
            Op::ReportAt,
            Op::PerfReport,
            Op::Incidents,
            Op::Journal,
            Op::Update,
            Op::Propagate,
            Op::Batch,
            Op::Gradient,
            Op::Shutdown,
            Op::DebugStall,
            Op::DebugPanic,
        ] {
            assert_eq!(Op::from_name(op.name()), Some(op));
            let _ = op.kind();
        }
        assert_eq!(Op::Update.kind(), OpKind::Writer);
        assert_eq!(Op::Batch.kind(), OpKind::Heavy);
        assert_eq!(Op::Stats.kind(), OpKind::Control);
    }
}
