//! The durability layer's on-disk formats and writer: a checksummed,
//! length-framed write-ahead log of committed writer ops plus periodic
//! binary checkpoints of the committed engine state.
//!
//! # File formats (version 1)
//!
//! **WAL** (`wal.log`): an 12-byte header — magic `INSTAWAL`, `u32` LE
//! format version — followed by records, each framed as
//!
//! ```text
//! [u32 LE payload len][u32 LE crc32(payload)][payload]
//! payload = [u64 LE commit epoch][WriterOp bytes]   (insta_engine::persist)
//! ```
//!
//! A record is appended (and, by default, `fdatasync`'d) *before* the
//! session commits and the snapshot publishes, so the log is always a
//! superset of what any client ever observed. A torn tail — short header,
//! short body, or CRC mismatch — marks the end of the committed history;
//! recovery truncates it with a typed incident and never replays bytes
//! past it.
//!
//! **Checkpoint** (`checkpoint-<epoch:020>.ckpt`): magic `INSTACKP`,
//! `u32` LE version, `u32` LE crc32(payload), `u64` LE payload length,
//! then the payload:
//!
//! ```text
//! payload = [u64 LE state len][EngineDurableState bytes][TimingSnapshot bytes]
//! ```
//!
//! The embedded snapshot is a *self-verification artifact*: recovery
//! restores the durable state, re-propagates, and compares slack bits
//! against the stored snapshot — a checkpoint from a different design or
//! engine configuration is detected as stale instead of silently serving
//! wrong timing. Checkpoints are written to a temp file, fsync'd, renamed
//! into place, and the directory fsync'd, so a crash mid-checkpoint
//! leaves at most an ignorable `.tmp`. After a successful checkpoint the
//! WAL is truncated back to its header (every logged record is ≤ the
//! checkpoint epoch, hence subsumed); a crash between rename and truncate
//! is benign because replay skips records at or below the restored epoch.

use insta_engine::{encode_snapshot, EngineDurableState, TimingSnapshot, WriterOp};
use insta_support::fault::{CrashPoint, CrashSwitch};
use insta_support::hash::crc32;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// WAL file magic.
pub const WAL_MAGIC: &[u8; 8] = b"INSTAWAL";
/// Checkpoint file magic.
pub const CKPT_MAGIC: &[u8; 8] = b"INSTACKP";
/// On-disk format generation shared by both artifacts.
///
/// v2: the engine-counters codec grew the MCMM fields
/// (`mcmm_evaluations` / `mcmm_corner_lanes` / `mcmm_deduped`), so v1
/// checkpoints decode short and are rejected rather than misread.
pub const FORMAT_VERSION: u32 = 2;
/// WAL header bytes: magic + version.
pub const WAL_HEADER_LEN: u64 = 12;
/// Largest accepted WAL record payload — a corrupted length field must
/// not drive a multi-gigabyte allocation.
const MAX_RECORD_BYTES: u32 = 1 << 30;

/// Durability configuration for a daemon.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding `wal.log` and `checkpoint-*.ckpt` (created on
    /// open).
    pub dir: PathBuf,
    /// `fdatasync` every WAL append before the commit publishes (the
    /// default). Turning this off trades the power-loss guarantee for
    /// speed — a kill -9 still loses nothing, but a host crash may.
    pub fsync: bool,
    /// Commits between checkpoints (`0` = never checkpoint; the WAL then
    /// grows until restart).
    pub checkpoint_every: u64,
    /// Newest checkpoints retained after a successful new one (≥ 1).
    pub keep_checkpoints: usize,
    /// Test hook: a crash injector that kills the durability layer at an
    /// armed [`CrashPoint`] — writes after the trip vanish, exactly as
    /// after a `kill -9`.
    pub crash: Option<Arc<CrashSwitch>>,
}

impl DurabilityConfig {
    /// Durability in `dir` with the production defaults: fsync on, a
    /// checkpoint every 64 commits, two checkpoints retained.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            fsync: true,
            checkpoint_every: 64,
            keep_checkpoints: 2,
            crash: None,
        }
    }
}

/// Live durability counters, surfaced under `stats.durability`.
#[derive(Debug, Default)]
pub struct DurabilityStats {
    /// WAL records appended.
    pub wal_records: AtomicU64,
    /// WAL bytes appended (headers included).
    pub wal_bytes: AtomicU64,
    /// `fdatasync` calls issued.
    pub fsyncs: AtomicU64,
    /// WAL appends that failed (each rolled back its session).
    pub wal_append_failures: AtomicU64,
    /// Checkpoints successfully renamed into place.
    pub checkpoints_written: AtomicU64,
    /// Checkpoint attempts that failed (commit durability unaffected —
    /// the WAL still holds the records).
    pub checkpoint_failures: AtomicU64,
    /// Epoch of the newest successful checkpoint (0 = none yet).
    pub last_checkpoint_epoch: AtomicU64,
}

impl DurabilityStats {
    /// Snapshot rows for the stats surface.
    pub fn rows(&self) -> [(&'static str, u64); 7] {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        [
            ("wal_records", g(&self.wal_records)),
            ("wal_bytes", g(&self.wal_bytes)),
            ("fsyncs", g(&self.fsyncs)),
            ("wal_append_failures", g(&self.wal_append_failures)),
            ("checkpoints_written", g(&self.checkpoints_written)),
            ("checkpoint_failures", g(&self.checkpoint_failures)),
            ("last_checkpoint_epoch", g(&self.last_checkpoint_epoch)),
        ]
    }
}

/// The append side of the durability layer. All mutating calls happen
/// under the server's writer lock; the internal mutex only guards the
/// file handle against stats scrapes.
#[derive(Debug)]
pub struct Durability {
    cfg: DurabilityConfig,
    wal: Mutex<File>,
    /// Set when the crash injector trips: every later durable write is
    /// dropped, simulating the instant after power loss.
    dead: AtomicBool,
    /// Commit attempts seen (the crash injector's index space).
    commits: AtomicU64,
    /// Commits since the last checkpoint.
    since_checkpoint: AtomicU64,
    /// Live counters.
    pub stats: DurabilityStats,
}

/// The WAL file path under a durability directory.
pub fn wal_path(dir: &Path) -> PathBuf {
    dir.join("wal.log")
}

fn checkpoint_path(dir: &Path, epoch: u64) -> PathBuf {
    // Zero-padded so lexicographic order is epoch order.
    dir.join(format!("checkpoint-{epoch:020}.ckpt"))
}

fn fsync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

fn encode_record(epoch: u64, op: &WriterOp) -> Vec<u8> {
    let mut payload = epoch.to_le_bytes().to_vec();
    payload.extend_from_slice(&op.encode());
    let mut rec = Vec::with_capacity(payload.len() + 8);
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(&crc32(&payload).to_le_bytes());
    rec.extend_from_slice(&payload);
    rec
}

impl Durability {
    /// Opens (creating as needed) the durability directory and WAL for
    /// appending. Run [`crate::recovery::recover`] *first* — it truncates
    /// any torn tail; this open only validates/initializes the header.
    pub fn open(cfg: DurabilityConfig) -> io::Result<Self> {
        std::fs::create_dir_all(&cfg.dir)?;
        let path = wal_path(&cfg.dir);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let len = file.metadata()?.len();
        if len < WAL_HEADER_LEN {
            // Fresh (or sub-header, which recovery already judged
            // worthless): write a clean header.
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(WAL_MAGIC)?;
            file.write_all(&FORMAT_VERSION.to_le_bytes())?;
            file.sync_data()?;
            fsync_dir(&cfg.dir)?;
        }
        Ok(Durability {
            cfg,
            wal: Mutex::new(file),
            dead: AtomicBool::new(false),
            commits: AtomicU64::new(0),
            since_checkpoint: AtomicU64::new(0),
            stats: DurabilityStats::default(),
        })
    }

    /// Whether fsync-per-append is on.
    pub fn fsync_enabled(&self) -> bool {
        self.cfg.fsync
    }

    /// Whether the crash injector has tripped (test observability).
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    fn lock_wal(&self) -> MutexGuard<'_, File> {
        self.wal.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn fire(&self, point: CrashPoint, idx: u64) -> bool {
        if let Some(sw) = &self.cfg.crash {
            if sw.fire(point, idx) {
                self.dead.store(true, Ordering::Release);
                return true;
            }
        }
        false
    }

    /// Makes one commit durable *before* it happens: appends the framed,
    /// checksummed record and (by default) `fdatasync`s it. `epoch` is
    /// the epoch the imminent commit will produce. On error the caller
    /// must roll the session back — nothing may publish.
    pub fn log_commit(&self, epoch: u64, op: &WriterOp) -> io::Result<()> {
        let idx = self.commits.fetch_add(1, Ordering::Relaxed);
        if self.is_dead() || self.fire(CrashPoint::BeforeWalAppend, idx) {
            return Ok(());
        }
        let rec = encode_record(epoch, op);
        let mut f = self.lock_wal();
        let r = (|| -> io::Result<()> {
            f.seek(SeekFrom::End(0))?;
            if self.fire(CrashPoint::MidWalAppend, idx) {
                // Simulated power loss mid-write: a torn prefix of the
                // record reaches the platter, then the layer dies.
                let torn = (rec.len() * 2 / 3).clamp(1, rec.len() - 1);
                f.write_all(&rec[..torn])?;
                f.sync_data()?;
                return Ok(());
            }
            f.write_all(&rec)?;
            if self.cfg.fsync {
                f.sync_data()?;
                self.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
            }
            self.stats.wal_records.fetch_add(1, Ordering::Relaxed);
            self.stats
                .wal_bytes
                .fetch_add(rec.len() as u64, Ordering::Relaxed);
            self.fire(CrashPoint::AfterWalAppend, idx);
            Ok(())
        })();
        if r.is_err() {
            self.stats.wal_append_failures.fetch_add(1, Ordering::Relaxed);
        }
        r
    }

    /// Advances the checkpoint cadence by one committed epoch and says
    /// whether a checkpoint is due *now*. Callers gate the (expensive)
    /// `EngineDurableState::capture` behind this so commits between
    /// checkpoints never pay for a full state clone.
    pub fn checkpoint_due(&self) -> bool {
        if self.is_dead() || self.cfg.checkpoint_every == 0 {
            return false;
        }
        let n = self.since_checkpoint.fetch_add(1, Ordering::Relaxed) + 1;
        if n < self.cfg.checkpoint_every {
            return false;
        }
        self.since_checkpoint.store(0, Ordering::Relaxed);
        true
    }

    /// Writes a checkpoint of the epoch just committed. Called after
    /// publication, still under the writer lock, only when
    /// [`Durability::checkpoint_due`] said so. Returns the checkpointed
    /// epoch when one was written.
    ///
    /// Failure here never un-commits anything — the WAL still holds every
    /// record — so callers record an incident and carry on.
    pub fn write_checkpoint(
        &self,
        state: &EngineDurableState,
        snapshot: &TimingSnapshot,
    ) -> io::Result<Option<u64>> {
        if self.is_dead() {
            return Ok(None);
        }
        let idx = self.commits.load(Ordering::Relaxed).saturating_sub(1);
        let epoch = state.epoch;
        let r = (|| -> io::Result<Option<u64>> {
            let image = encode_checkpoint(state, snapshot);
            let tmp = self.cfg.dir.join(format!("checkpoint-{epoch:020}.tmp"));
            if self.fire(CrashPoint::MidCheckpoint, idx) {
                // Crash mid-checkpoint: a partial temp file survives; the
                // real checkpoint never lands.
                let torn = (image.len() / 2).max(1);
                let mut f = File::create(&tmp)?;
                f.write_all(&image[..torn])?;
                f.sync_data()?;
                return Ok(None);
            }
            {
                let mut f = File::create(&tmp)?;
                f.write_all(&image)?;
                f.sync_data()?;
            }
            let dst = checkpoint_path(&self.cfg.dir, epoch);
            std::fs::rename(&tmp, &dst)?;
            fsync_dir(&self.cfg.dir)?;
            self.stats.checkpoints_written.fetch_add(1, Ordering::Relaxed);
            self.stats
                .last_checkpoint_epoch
                .store(epoch, Ordering::Relaxed);
            if self.fire(CrashPoint::AfterCheckpointBeforeTruncate, idx) {
                return Ok(Some(epoch));
            }
            // Every logged record is ≤ the checkpoint epoch: subsumed.
            {
                let f = self.lock_wal();
                f.set_len(WAL_HEADER_LEN)?;
                if self.cfg.fsync {
                    f.sync_data()?;
                }
            }
            self.prune_checkpoints()?;
            Ok(Some(epoch))
        })();
        if r.is_err() {
            self.stats.checkpoint_failures.fetch_add(1, Ordering::Relaxed);
        }
        r
    }

    fn prune_checkpoints(&self) -> io::Result<()> {
        let keep = self.cfg.keep_checkpoints.max(1);
        let mut all = list_checkpoints(&self.cfg.dir)?;
        for (_epoch, path) in all.drain(..).skip(keep) {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// The epoch this commit produced.
    pub epoch: u64,
    /// The logged writer operation.
    pub op: WriterOp,
}

/// Damage found at the WAL tail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalDamage {
    /// Byte offset of the first bad record (= the valid prefix length).
    pub offset: u64,
    /// What was wrong.
    pub message: String,
}

/// The result of scanning a WAL file.
#[derive(Debug, Default)]
pub struct WalScan {
    /// Records of the valid prefix, in append order.
    pub records: Vec<WalRecord>,
    /// Length of the valid prefix — what a repair truncates to.
    pub valid_bytes: u64,
    /// Tail damage, if any (`None` = the whole file is sound).
    pub damage: Option<WalDamage>,
}

/// Scans a WAL file, validating framing and per-record CRC. A missing or
/// zero-length file is a valid empty log. Damage never aborts the scan
/// result: the valid prefix is returned alongside the typed damage.
pub fn scan_wal(path: &Path) -> io::Result<WalScan> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(WalScan::default()),
        Err(e) => return Err(e),
    }
    if bytes.is_empty() {
        return Ok(WalScan::default());
    }
    let mut scan = WalScan::default();
    if bytes.len() < WAL_HEADER_LEN as usize || &bytes[..8] != WAL_MAGIC {
        scan.damage = Some(WalDamage {
            offset: 0,
            message: "bad or torn WAL header (wrong magic)".to_owned(),
        });
        return Ok(scan);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != FORMAT_VERSION {
        scan.damage = Some(WalDamage {
            offset: 0,
            message: format!("unsupported WAL format version {version}"),
        });
        return Ok(scan);
    }
    let mut pos = WAL_HEADER_LEN as usize;
    scan.valid_bytes = pos as u64;
    let damage = |pos: usize, message: String| {
        Some(WalDamage {
            offset: pos as u64,
            message,
        })
    };
    while pos < bytes.len() {
        let rest = bytes.len() - pos;
        if rest < 8 {
            scan.damage = damage(pos, format!("torn record header ({rest} of 8 bytes)"));
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_RECORD_BYTES {
            scan.damage = damage(pos, format!("implausible record length {len}"));
            break;
        }
        let len = len as usize;
        if rest - 8 < len {
            scan.damage = damage(
                pos,
                format!("torn record body ({} of {len} bytes)", rest - 8),
            );
            break;
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        let actual = crc32(payload);
        if actual != crc {
            scan.damage = damage(
                pos,
                format!("record checksum mismatch (stored {crc:#010x}, computed {actual:#010x})"),
            );
            break;
        }
        if payload.len() < 8 {
            scan.damage = damage(pos, "record payload shorter than its epoch".to_owned());
            break;
        }
        let epoch = u64::from_le_bytes(payload[..8].try_into().unwrap());
        match WriterOp::decode(&payload[8..]) {
            Ok(op) => scan.records.push(WalRecord { epoch, op }),
            Err(e) => {
                scan.damage = damage(pos, format!("undecodable record payload: {e}"));
                break;
            }
        }
        pos += 8 + len;
        scan.valid_bytes = pos as u64;
    }
    Ok(scan)
}

/// Physically truncates a damaged WAL to its valid prefix (a sub-header
/// prefix is cut to zero; the next [`Durability::open`] rewrites the
/// header).
pub fn truncate_wal(path: &Path, valid_bytes: u64) -> io::Result<()> {
    let keep = if valid_bytes < WAL_HEADER_LEN {
        0
    } else {
        valid_bytes
    };
    let f = OpenOptions::new().write(true).open(path)?;
    f.set_len(keep)?;
    f.sync_data()?;
    Ok(())
}

/// A decoded checkpoint: the durable engine state plus the committed
/// snapshot stored for self-verification.
#[derive(Debug)]
pub struct CheckpointImage {
    /// The restorable engine state.
    pub state: EngineDurableState,
    /// The snapshot as committed — recovery re-derives it and compares
    /// bits to detect stale checkpoints.
    pub snapshot: TimingSnapshot,
}

/// Encodes a checkpoint file image (header + checksummed payload).
pub fn encode_checkpoint(state: &EngineDurableState, snapshot: &TimingSnapshot) -> Vec<u8> {
    let state_bytes = state.encode();
    let snap_bytes = encode_snapshot(snapshot);
    let mut payload = Vec::with_capacity(8 + state_bytes.len() + snap_bytes.len());
    payload.extend_from_slice(&(state_bytes.len() as u64).to_le_bytes());
    payload.extend_from_slice(&state_bytes);
    payload.extend_from_slice(&snap_bytes);
    let mut image = Vec::with_capacity(payload.len() + 24);
    image.extend_from_slice(CKPT_MAGIC);
    image.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    image.extend_from_slice(&crc32(&payload).to_le_bytes());
    image.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    image.extend_from_slice(&payload);
    image
}

/// Loads and fully validates one checkpoint file. The error is a
/// human-readable reason suitable for a `ServiceIncident`.
pub fn load_checkpoint(path: &Path) -> Result<CheckpointImage, String> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| format!("reading {}: {e}", path.display()))?;
    if bytes.len() < 24 || &bytes[..8] != CKPT_MAGIC {
        return Err("bad or torn checkpoint header (wrong magic)".to_owned());
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(format!("unsupported checkpoint format version {version}"));
    }
    let crc = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    let len = u64::from_le_bytes(bytes[16..24].try_into().unwrap()) as usize;
    if bytes.len() - 24 != len {
        return Err(format!(
            "checkpoint payload length mismatch (declared {len}, have {})",
            bytes.len() - 24
        ));
    }
    let payload = &bytes[24..];
    let actual = crc32(payload);
    if actual != crc {
        return Err(format!(
            "checkpoint checksum mismatch (stored {crc:#010x}, computed {actual:#010x})"
        ));
    }
    if payload.len() < 8 {
        return Err("checkpoint payload shorter than its state length".to_owned());
    }
    let state_len = u64::from_le_bytes(payload[..8].try_into().unwrap()) as usize;
    if payload.len() - 8 < state_len {
        return Err(format!(
            "checkpoint state length {state_len} exceeds payload ({})",
            payload.len() - 8
        ));
    }
    let state = EngineDurableState::decode(&payload[8..8 + state_len])
        .map_err(|e| format!("checkpoint state: {e}"))?;
    let snapshot = insta_engine::decode_snapshot(&payload[8 + state_len..])
        .map_err(|e| format!("checkpoint snapshot: {e}"))?;
    Ok(CheckpointImage { state, snapshot })
}

/// Checkpoint files in `dir`, newest (highest epoch) first. Temp files
/// and foreign names are ignored; a missing directory is empty.
pub fn list_checkpoints(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let rd = match std::fs::read_dir(dir) {
        Ok(rd) => rd,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut out = Vec::new();
    for entry in rd {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(epoch) = name
            .strip_prefix("checkpoint-")
            .and_then(|s| s.strip_suffix(".ckpt"))
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        out.push((epoch, entry.path()));
    }
    out.sort_by(|a, b| b.0.cmp(&a.0));
    Ok(out)
}
