//! Admission control and graceful overload degradation.
//!
//! The daemon bounds concurrent *work*, not connections: every read or
//! heavy request must win one of [`ServeConfig::max_inflight`] slots
//! before it runs, and a full house is a typed [`overloaded`]
//! (`retry_after_ms` included) rather than a growing queue — the client
//! learns the truth in microseconds instead of timing out.
//!
//! Rejections feed a pressure score that decays as work completes — and,
//! since work may never arrive again after a rejection storm, also with
//! idle wall-clock time ([`ServeConfig::pressure_decay_ms`] per point),
//! so an idle daemon always walks back to `Normal` instead of wedging in
//! `SnapshotOnly`. The score selects the degradation [`Tier`]:
//!
//! | tier           | policy                                              |
//! |----------------|-----------------------------------------------------|
//! | `Normal`       | everything admitted while slots last                |
//! | `ShedHeavy`    | batch / gradient rejected with [`shed`]             |
//! | `SnapshotOnly` | additionally, `min_epoch` waits are not honored —   |
//! |                | reads are served from the last committed snapshot   |
//! |                | immediately, flagged `degraded: true`               |
//!
//! Two classes never degrade: control ops (`ping`/`stats`/`shutdown`
//! must work *especially* when the daemon is drowning) and writer ops —
//! the service sheds analysis load first, degrades read freshness
//! second, and never drops the writer.
//!
//! [`overloaded`]: crate::protocol::code::OVERLOADED
//! [`shed`]: crate::protocol::code::SHED

use crate::protocol::OpKind;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// Tuning knobs of the service layer.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Concurrent read/heavy requests allowed to run (writers are exempt).
    pub max_inflight: usize,
    /// Base back-off hint carried by `overloaded` rejections, scaled by
    /// the current pressure.
    pub retry_after_ms: u64,
    /// Pressure at which heavy work (batch/gradient) is shed.
    pub shed_pressure: u32,
    /// Pressure at which reads stop honoring `min_epoch` waits and serve
    /// the last committed snapshot flagged `degraded`.
    pub snapshot_only_pressure: u32,
    /// Idle decay rate: one pressure point drains per this many
    /// milliseconds without a rejection, so a daemon that stops receiving
    /// traffic after a rejection storm still returns to [`Tier::Normal`]
    /// (completion-driven decay alone needs new work to finish). `0`
    /// disables time-based decay.
    pub pressure_decay_ms: u64,
    /// Largest accepted frame body (allocation-bomb guard).
    pub max_frame_bytes: usize,
    /// Default per-request wall-clock budget in ms (0 = none).
    pub default_deadline_ms: u64,
    /// Longest a `min_epoch` read will wait for a commit before failing
    /// with `deadline` (bounds the wait even without a client deadline).
    pub max_epoch_wait_ms: u64,
    /// Capacity of the service-side incident ring.
    pub incident_log_cap: usize,
    /// Capacity of the request journal (spans/events ring).
    pub journal_capacity: usize,
    /// Scenario cap per `batch` request.
    pub max_batch_scenarios: usize,
    /// Admit the `debug_stall` / `debug_panic` test hooks.
    pub enable_debug_ops: bool,
    /// Test hook: sleep this long inside writer dispatch *after*
    /// propagation but *before* the commit deadline check — models a
    /// stall in the window the per-level cancellation polls can't see.
    #[doc(hidden)]
    pub stall_writer_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_inflight: 8,
            retry_after_ms: 2,
            shed_pressure: 6,
            snapshot_only_pressure: 18,
            pressure_decay_ms: 100,
            max_frame_bytes: 16 << 20,
            default_deadline_ms: 0,
            max_epoch_wait_ms: 250,
            incident_log_cap: 128,
            journal_capacity: 4096,
            max_batch_scenarios: 64,
            enable_debug_ops: false,
            stall_writer_ms: 0,
        }
    }
}

/// The current degradation tier, from least to most degraded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Full service.
    Normal,
    /// Heavy analysis (batch/gradient) is shed.
    ShedHeavy,
    /// Reads are served from the last committed snapshot only.
    SnapshotOnly,
}

impl Tier {
    /// The wire / stats name.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Normal => "normal",
            Tier::ShedHeavy => "shed_heavy",
            Tier::SnapshotOnly => "snapshot_only",
        }
    }
}

/// Why admission refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// No in-flight slot free; hint the client to back off.
    Overloaded {
        /// Suggested client back-off.
        retry_after_ms: u64,
    },
    /// Heavy work refused by the degradation tier.
    Shed,
}

/// The admission gate: a bounded in-flight counter plus the pressure
/// score driving the degradation tier. All atomics — readers never take
/// a lock to get admitted.
#[derive(Debug)]
pub struct Admission {
    max_inflight: usize,
    retry_after_ms: u64,
    shed_pressure: u32,
    snapshot_only_pressure: u32,
    pressure_decay_ms: u64,
    /// Monotonic clock base for the idle decay.
    epoch: std::time::Instant,
    /// Millis-since-`epoch` up to which idle decay has been applied;
    /// rejections push it forward so a storm can't bank idle credit.
    decay_mark_ms: AtomicU64,
    inflight: AtomicUsize,
    pressure: AtomicU32,
}

/// An admission slot held while a request runs; releasing it (Drop)
/// decays the pressure score — completed work is the evidence the
/// overload is passing.
#[derive(Debug)]
pub struct Ticket<'a> {
    gate: &'a Admission,
    counted: bool,
}

impl Admission {
    /// Builds the gate from the config knobs.
    pub fn new(cfg: &ServeConfig) -> Self {
        Admission {
            max_inflight: cfg.max_inflight.max(1),
            retry_after_ms: cfg.retry_after_ms.max(1),
            shed_pressure: cfg.shed_pressure.max(1),
            snapshot_only_pressure: cfg.snapshot_only_pressure.max(2),
            pressure_decay_ms: cfg.pressure_decay_ms,
            epoch: std::time::Instant::now(),
            decay_mark_ms: AtomicU64::new(0),
            inflight: AtomicUsize::new(0),
            pressure: AtomicU32::new(0),
        }
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Drains the pressure earned by idle wall-clock time since the last
    /// mark. Called on every read of the score, so a wedged-but-idle
    /// daemon walks back to `Normal` without needing new completions.
    /// The CAS elects one caller per elapsed window; losers simply read
    /// the already-decayed score.
    fn decay_idle(&self) {
        if self.pressure_decay_ms == 0 {
            return;
        }
        let now = self.now_ms();
        let mark = self.decay_mark_ms.load(Ordering::Relaxed);
        let steps = now.saturating_sub(mark) / self.pressure_decay_ms;
        if steps == 0 {
            return;
        }
        if self
            .decay_mark_ms
            .compare_exchange(
                mark,
                mark + steps * self.pressure_decay_ms,
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_ok()
        {
            let dec = u32::try_from(steps).unwrap_or(u32::MAX);
            let _ = self
                .pressure
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |p| {
                    Some(p.saturating_sub(dec))
                });
        }
    }

    /// The current degradation tier.
    pub fn tier(&self) -> Tier {
        self.decay_idle();
        let p = self.pressure.load(Ordering::Relaxed);
        if p >= self.snapshot_only_pressure {
            Tier::SnapshotOnly
        } else if p >= self.shed_pressure {
            Tier::ShedHeavy
        } else {
            Tier::Normal
        }
    }

    /// Current pressure score (stats surface).
    pub fn pressure(&self) -> u32 {
        self.decay_idle();
        self.pressure.load(Ordering::Relaxed)
    }

    /// Requests currently holding a counted slot.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Admits or rejects one request. Control ops get an uncounted
    /// ticket; writers get a counted ticket unconditionally (they may
    /// exceed the cap — the writer is never dropped); reads and heavies
    /// compete for the bounded slots, and heavies are shed outright at
    /// [`Tier::ShedHeavy`] and above.
    pub fn try_admit(&self, kind: OpKind) -> Result<Ticket<'_>, Rejection> {
        match kind {
            OpKind::Control => Ok(Ticket {
                gate: self,
                counted: false,
            }),
            OpKind::Writer => {
                self.inflight.fetch_add(1, Ordering::AcqRel);
                Ok(Ticket {
                    gate: self,
                    counted: true,
                })
            }
            OpKind::Heavy if self.tier() >= Tier::ShedHeavy => {
                self.note_rejection();
                Err(Rejection::Shed)
            }
            OpKind::Read | OpKind::Heavy => {
                // Optimistic claim, undone on overflow: cheaper than CAS
                // loops and exact enough for an admission gate.
                let prev = self.inflight.fetch_add(1, Ordering::AcqRel);
                if prev >= self.max_inflight {
                    self.inflight.fetch_sub(1, Ordering::AcqRel);
                    let p = self.note_rejection();
                    return Err(Rejection::Overloaded {
                        retry_after_ms: self.retry_after_ms * u64::from(p.max(1)),
                    });
                }
                Ok(Ticket {
                    gate: self,
                    counted: true,
                })
            }
        }
    }

    /// Bumps pressure on a rejection; returns the new score. The decay
    /// mark moves to *now* so the storm itself doesn't bank idle credit
    /// accrued before it.
    fn note_rejection(&self) -> u32 {
        self.decay_mark_ms.store(self.now_ms(), Ordering::Relaxed);
        self.pressure
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |p| {
                Some(p.saturating_add(3))
            })
            .map(|p| p.saturating_add(3))
            .unwrap_or(u32::MAX)
    }
}

impl Drop for Ticket<'_> {
    fn drop(&mut self) {
        if self.counted {
            self.gate.inflight.fetch_sub(1, Ordering::AcqRel);
        }
        // Completion decays pressure regardless of class — progress is
        // progress.
        let _ = self
            .gate
            .pressure
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |p| {
                Some(p.saturating_sub(1))
            });
    }
}

/// Monotonic service-layer counters, exported by the `stats` op and the
/// throughput bench. All relaxed atomics — these are observability, not
/// synchronization.
#[derive(Debug, Default)]
pub struct ServeCounters {
    /// Requests admitted and dispatched.
    pub accepted: AtomicU64,
    /// Requests refused with `overloaded`.
    pub rejected_overload: AtomicU64,
    /// Heavy requests refused by the degradation tier.
    pub shed: AtomicU64,
    /// Frames/bodies that failed to decode (`protocol` / `bad_request`).
    pub rejected_protocol: AtomicU64,
    /// Requests whose deadline fired mid-work (engine rolled back).
    pub deadline_cancelled: AtomicU64,
    /// Requests that finished past their wall-clock budget
    /// (`deadline_overshoot`).
    pub deadline_overshoot: AtomicU64,
    /// Reads served from a stale snapshot with `degraded: true`.
    pub degraded_reports: AtomicU64,
    /// Panics isolated by the connection supervisor.
    pub panics_isolated: AtomicU64,
    /// Snapshot publications (successful writer commits).
    pub snapshot_swaps: AtomicU64,
    /// Connections accepted.
    pub connections_opened: AtomicU64,
    /// Connections torn down.
    pub connections_closed: AtomicU64,
}

impl ServeCounters {
    /// The counters as `(name, value)` rows — the JSON/stats surface.
    pub fn rows(&self) -> [(&'static str, u64); 11] {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        [
            ("accepted", g(&self.accepted)),
            ("rejected_overload", g(&self.rejected_overload)),
            ("shed", g(&self.shed)),
            ("rejected_protocol", g(&self.rejected_protocol)),
            ("deadline_cancelled", g(&self.deadline_cancelled)),
            ("deadline_overshoot", g(&self.deadline_overshoot)),
            ("degraded_reports", g(&self.degraded_reports)),
            ("panics_isolated", g(&self.panics_isolated)),
            ("snapshot_swaps", g(&self.snapshot_swaps)),
            ("connections_opened", g(&self.connections_opened)),
            ("connections_closed", g(&self.connections_closed)),
        ]
    }

    /// Bump one counter by name-less reference (ergonomic shorthand).
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_bounded_and_tickets_release() {
        let cfg = ServeConfig {
            max_inflight: 2,
            ..ServeConfig::default()
        };
        let gate = Admission::new(&cfg);
        let a = gate.try_admit(OpKind::Read).unwrap();
        let _b = gate.try_admit(OpKind::Read).unwrap();
        let rej = gate.try_admit(OpKind::Read).unwrap_err();
        assert!(matches!(rej, Rejection::Overloaded { retry_after_ms } if retry_after_ms > 0));
        drop(a);
        assert!(gate.try_admit(OpKind::Read).is_ok(), "slot came back");
    }

    #[test]
    fn writer_and_control_bypass_the_cap() {
        let cfg = ServeConfig {
            max_inflight: 1,
            ..ServeConfig::default()
        };
        let gate = Admission::new(&cfg);
        let _r = gate.try_admit(OpKind::Read).unwrap();
        assert!(gate.try_admit(OpKind::Read).is_err(), "cap is real");
        let _w = gate.try_admit(OpKind::Writer).unwrap();
        let _c = gate.try_admit(OpKind::Control).unwrap();
        assert_eq!(gate.inflight(), 2, "writer counted, control not");
    }

    #[test]
    fn pressure_walks_the_tiers_and_decays() {
        let cfg = ServeConfig {
            max_inflight: 1,
            shed_pressure: 6,
            snapshot_only_pressure: 12,
            ..ServeConfig::default()
        };
        let gate = Admission::new(&cfg);
        assert_eq!(gate.tier(), Tier::Normal);
        let hold = gate.try_admit(OpKind::Read).unwrap();
        for _ in 0..2 {
            let _ = gate.try_admit(OpKind::Read);
        }
        assert_eq!(gate.tier(), Tier::ShedHeavy, "p=6 sheds heavies");
        assert!(matches!(
            gate.try_admit(OpKind::Heavy),
            Err(Rejection::Shed)
        ));
        // That shed itself raised pressure further (9), two more → 15.
        let _ = gate.try_admit(OpKind::Read);
        let _ = gate.try_admit(OpKind::Read);
        assert_eq!(gate.tier(), Tier::SnapshotOnly);
        // Writers are still admitted at the worst tier.
        assert!(gate.try_admit(OpKind::Writer).is_ok());
        // Completions decay the score back to normal.
        drop(hold);
        for _ in 0..20 {
            drop(gate.try_admit(OpKind::Read).unwrap());
        }
        assert_eq!(gate.tier(), Tier::Normal, "pressure decayed");
    }

    /// Regression: an idle daemon must not wedge in `SnapshotOnly` after
    /// a rejection storm. Completion-driven decay needs new work to
    /// finish, and a shed-everything tier may never see any — wall-clock
    /// idle time alone has to drain the score.
    #[test]
    fn idle_pressure_decays_back_to_normal() {
        let cfg = ServeConfig {
            max_inflight: 1,
            shed_pressure: 2,
            snapshot_only_pressure: 4,
            pressure_decay_ms: 1,
            ..ServeConfig::default()
        };
        let gate = Admission::new(&cfg);
        let _hold = gate.try_admit(OpKind::Read).unwrap();
        for _ in 0..8 {
            let _ = gate.try_admit(OpKind::Read);
        }
        assert_eq!(gate.tier(), Tier::SnapshotOnly, "storm wedged the gate");
        // Idle: no completions, no new traffic — the held ticket never
        // drops. Time alone must clear the tier.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while gate.tier() != Tier::Normal && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(gate.tier(), Tier::Normal, "idle gate never recovered");
        assert_eq!(gate.pressure(), 0, "score fully drained");
    }

    /// `pressure_decay_ms: 0` turns the idle decay off (the pre-fix
    /// completion-only behavior, kept for operators who want it).
    #[test]
    fn zero_decay_interval_disables_idle_decay() {
        let cfg = ServeConfig {
            max_inflight: 1,
            pressure_decay_ms: 0,
            ..ServeConfig::default()
        };
        let gate = Admission::new(&cfg);
        let _hold = gate.try_admit(OpKind::Read).unwrap();
        for _ in 0..4 {
            let _ = gate.try_admit(OpKind::Read);
        }
        let before = gate.pressure();
        assert!(before > 0);
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(gate.pressure(), before, "no idle decay when disabled");
    }
}
