//! Startup recovery: rebuild the committed timeline from the durability
//! directory and leave the engine exactly where a crash-free twin would
//! be.
//!
//! The algorithm (see DESIGN.md "Durability and recovery"):
//!
//! 1. **Checkpoint.** Load the newest checkpoint, restore its durable
//!    state into the engine, re-propagate, and compare slack bits against
//!    the snapshot stored *inside* the checkpoint. A mismatch (stale
//!    checkpoint: wrong design, seed, or engine config) or any decode
//!    failure records a typed incident and falls back to the next-newest
//!    checkpoint, then to the engine's initial state.
//! 2. **WAL scan.** Validate framing and per-record CRC. A torn or
//!    corrupt tail is physically truncated with a typed incident — the
//!    valid prefix is kept, the damage is never replayed.
//! 3. **Replay.** Each record with an epoch above the engine's is applied
//!    through a *real* timing session — the same code path the daemon's
//!    writer used — and must commit to exactly the logged epoch. Records
//!    at or below the engine's epoch are subsumed by the checkpoint
//!    (the crash-between-rename-and-truncate window) and skipped.
//!
//! Because deltas are absolute overwrites and propagation is
//! deterministic, the recovered engine's slacks are bit-identical
//! (`f64::to_bits`) to a twin that never crashed — the contract the
//! chaos suite in `tests/recovery.rs` enforces at every crash point.

use crate::wal::{self, DurabilityConfig};
use insta_engine::{EngineDurableState, InstaEngine, ServiceIncident, WriterOp};
use std::io;

/// Incident category for everything the durability layer reports.
pub const INCIDENT_CATEGORY: &str = "durability";

/// What recovery did, for the startup log and the stats surface.
#[derive(Debug)]
pub struct RecoveryReport {
    /// The engine's epoch after recovery.
    pub recovered_epoch: u64,
    /// Epoch restored from a checkpoint, if one was used.
    pub checkpoint_epoch: Option<u64>,
    /// WAL records replayed through real sessions.
    pub replayed: u64,
    /// Whether a damaged WAL tail was truncated.
    pub wal_truncated: bool,
    /// Typed incidents (stale checkpoints, torn tails, replay gaps) —
    /// the server seeds its incident ring with these.
    pub incidents: Vec<ServiceIncident>,
}

fn incident(message: String) -> ServiceIncident {
    ServiceIncident {
        request_id: 0,
        category: INCIDENT_CATEGORY,
        message,
    }
}

/// Slack bits of the engine's current report (empty when none).
fn slack_bits(engine: &InstaEngine) -> Vec<u64> {
    engine
        .try_report()
        .map(|r| r.slacks.iter().map(|s| s.to_bits()).collect())
        .unwrap_or_default()
}

/// Recovers `engine` from `cfg.dir`. The engine must be freshly built
/// from the same design/config the daemon originally served (recovery
/// replays *state*, not topology). Returns the report; `engine` is left
/// propagated whenever anything was restored or replayed.
pub fn recover(engine: &mut InstaEngine, cfg: &DurabilityConfig) -> io::Result<RecoveryReport> {
    std::fs::create_dir_all(&cfg.dir)?;
    let mut report = RecoveryReport {
        recovered_epoch: engine.epoch(),
        checkpoint_epoch: None,
        replayed: 0,
        wal_truncated: false,
        incidents: Vec::new(),
    };

    // Phase 1: newest valid-and-verified checkpoint. The pristine state
    // is captured first so a stale candidate can be undone before trying
    // the next one.
    let pristine = EngineDurableState::capture(engine);
    for (epoch, path) in wal::list_checkpoints(&cfg.dir)? {
        let image = match wal::load_checkpoint(&path) {
            Ok(img) => img,
            Err(msg) => {
                report
                    .incidents
                    .push(incident(format!("checkpoint epoch {epoch} rejected: {msg}")));
                continue;
            }
        };
        if let Err(e) = image.state.restore(engine) {
            report.incidents.push(incident(format!(
                "checkpoint epoch {epoch} is stale: {e}"
            )));
            continue;
        }
        engine.propagate();
        // Self-verification: the re-derived slacks must match the bits
        // the checkpoint stored, or the checkpoint lies about this
        // engine (stale: wrong design/seed/config at startup).
        let derived = slack_bits(engine);
        let stored: Vec<u64> = image
            .snapshot
            .report()
            .map(|r| r.slacks.iter().map(|s| s.to_bits()).collect())
            .unwrap_or_default();
        if derived != stored {
            report.incidents.push(incident(format!(
                "checkpoint epoch {epoch} is stale: restored slacks diverge from the stored \
                 snapshot ({} vs {} endpoints)",
                derived.len(),
                stored.len()
            )));
            pristine
                .restore(engine)
                .expect("pristine state always fits its own engine");
            continue;
        }
        report.checkpoint_epoch = Some(epoch);
        break;
    }
    if report.checkpoint_epoch.is_none() && !report.incidents.is_empty() {
        // Every checkpoint was rejected: restart the timeline from the
        // engine's initial state and let the WAL replay carry it forward.
        pristine
            .restore(engine)
            .expect("pristine state always fits its own engine");
    }

    // Phase 2: WAL scan; truncate a damaged tail with a typed incident.
    let path = wal::wal_path(&cfg.dir);
    let scan = wal::scan_wal(&path)?;
    if let Some(damage) = &scan.damage {
        report.incidents.push(incident(format!(
            "WAL tail truncated at byte {}: {}",
            damage.offset, damage.message
        )));
        wal::truncate_wal(&path, scan.valid_bytes)?;
        report.wal_truncated = true;
    }

    // Phase 3: replay the tail through real sessions.
    for rec in &scan.records {
        if rec.epoch <= engine.epoch() {
            continue; // subsumed by the checkpoint
        }
        if rec.epoch != engine.epoch() + 1 {
            report.incidents.push(incident(format!(
                "WAL replay gap: next record is epoch {}, engine is at {} — replay stopped",
                rec.epoch,
                engine.epoch()
            )));
            break;
        }
        let mut session = engine.begin_session();
        let outcome = match &rec.op {
            WriterOp::Propagate => session.propagate(),
            WriterOp::Update(deltas) => session.update_timing(deltas),
        };
        if let Err(e) = outcome {
            // A logged op failing on replay means the artifacts disagree
            // with the engine (e.g. deltas for a different design that
            // somehow passed the epoch chain). Stop: serving a partial
            // timeline with an incident beats serving a wrong one.
            report.incidents.push(incident(format!(
                "WAL replay failed at epoch {}: {e} — replay stopped",
                rec.epoch
            )));
            break;
        }
        match session.commit() {
            Ok(epoch) => {
                debug_assert_eq!(epoch, rec.epoch, "replay must reproduce the logged epoch");
                report.replayed += 1;
            }
            Err(e) => {
                report.incidents.push(incident(format!(
                    "WAL replay commit failed at epoch {}: {e} — replay stopped",
                    rec.epoch
                )));
                break;
            }
        }
    }

    report.recovered_epoch = engine.epoch();
    Ok(report)
}
