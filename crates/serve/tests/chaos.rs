//! The chaos gate: a deterministic protocol-fault storm against a live
//! daemon. For every [`ProtocolFault`] class × case the daemon must
//! neither crash nor hang, every failed request must yield a *typed*
//! error when a reply is possible, connections must survive exactly the
//! classes that keep frame sync, and — the transactional payoff — the
//! writer's next commit after the storm must be bit-identical to a
//! fault-free run.

mod common;

use common::{build_engine, connect, slack_bits};
use insta_serve::protocol::{self, Op, Request};
use insta_serve::{ServeConfig, Server};
use insta_support::fault::{FaultPlan, ProtocolFault};
use insta_support::json::{obj, Json, ToJson};
use std::io::Write;
use std::net::Shutdown;
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;

const SEED: u64 = 41;
const K: usize = 8;
const CASES: u64 = 4;

/// A well-formed `report_slack` frame to corrupt.
fn clean_frame() -> Vec<u8> {
    let body = Request {
        id: 7,
        op: Op::ReportSlack,
        deadline_ms: None,
        version: None,
        params: Json::Null,
    }
    .encode();
    let mut f = format!("{}\n", body.len()).into_bytes();
    f.extend_from_slice(body.as_bytes());
    f
}

fn update_params() -> Json {
    obj([(
        "deltas",
        Json::Arr(vec![obj([
            ("arc", 0_u64.to_json()),
            ("mean", Json::Arr(vec![35.0.to_json(), 35.0.to_json()])),
            ("sigma", Json::Arr(vec![3.5.to_json(), 3.5.to_json()])),
        ])]),
    )])
}

/// Raw socket pair against the daemon, for episodes that need direct
/// byte-level and shutdown control.
fn raw_connect(server: &Server) -> (UnixStream, std::thread::JoinHandle<()>) {
    let (ours, theirs) = UnixStream::pair().expect("socketpair");
    let srv = server.clone();
    let h = std::thread::spawn(move || {
        let r = theirs.try_clone().expect("clone");
        srv.handle_connection(r, theirs);
    });
    (ours, h)
}

fn read_reply(sock: &UnixStream) -> Result<Json, String> {
    let mut r = std::io::BufReader::new(sock.try_clone().expect("clone"));
    let body = protocol::read_frame(&mut r, 64 << 20).map_err(|e| e.to_string())?;
    insta_support::json::parse(std::str::from_utf8(&body).map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())
}

#[test]
fn protocol_fault_storm_never_crashes_hangs_or_corrupts_the_writer() {
    let plan = FaultPlan::new(0x5E27E);
    let cfg = ServeConfig {
        enable_debug_ops: true,
        ..ServeConfig::default()
    };
    let server = Server::new(build_engine(SEED, K), cfg);

    // Serial fault-free ground truth: the storm must not perturb it.
    let truth0: Vec<u64> = server
        .snapshot()
        .report()
        .unwrap()
        .slacks
        .iter()
        .map(|s| s.to_bits())
        .collect();
    let mut twin = build_engine(SEED, K);
    let truth1: Vec<u64> = twin
        .update_timing(&[insta_refsta::eco::ArcDelta {
            arc: 0,
            mean: [35.0; 2],
            sigma: [3.5; 2],
        }])
        .expect("twin update")
        .slacks
        .iter()
        .map(|s| s.to_bits())
        .collect();

    let mut joins = Vec::new();
    for fault in ProtocolFault::ALL {
        for case in 0..CASES {
            let wire = plan.corrupt_frame(case, fault, &clean_frame());
            match fault {
                ProtocolFault::GarbageJson => {
                    // Length claim still true → frame sync survives: a
                    // typed reply arrives and the connection stays up.
                    let (mut sock, h) = raw_connect(&server);
                    sock.write_all(&wire).expect("send garbage");
                    sock.flush().unwrap();
                    let reply = read_reply(&sock)
                        .unwrap_or_else(|e| panic!("{fault:?}/{case}: no reply: {e}"));
                    assert!(
                        reply.get::<bool>("ok").is_ok(),
                        "{fault:?}/{case}: untyped reply {reply}"
                    );
                    // Same connection, next frame: fully functional.
                    let mut cl = insta_serve::Client::new(
                        sock.try_clone().unwrap(),
                        sock.try_clone().unwrap(),
                    );
                    let pong = cl
                        .call(Op::Ping, None, Json::Null)
                        .unwrap_or_else(|e| panic!("{fault:?}/{case}: connection died: {e}"));
                    assert!(pong.ok);
                    drop(cl);
                    drop(sock);
                    joins.push(h);
                }
                ProtocolFault::OversizedLength | ProtocolFault::BadLengthHeader => {
                    // Frame sync lost: one typed protocol error, then the
                    // daemon closes the connection.
                    let (mut sock, h) = raw_connect(&server);
                    sock.write_all(&wire).expect("send bad header");
                    sock.flush().unwrap();
                    let reply = read_reply(&sock)
                        .unwrap_or_else(|e| panic!("{fault:?}/{case}: no reply: {e}"));
                    assert_eq!(
                        reply.get::<bool>("ok").unwrap(),
                        false,
                        "{fault:?}/{case}: must be an error"
                    );
                    assert_eq!(
                        reply
                            .field("error")
                            .unwrap()
                            .get::<String>("code")
                            .unwrap(),
                        "protocol",
                        "{fault:?}/{case}"
                    );
                    assert!(
                        read_reply(&sock).is_err(),
                        "{fault:?}/{case}: connection must close after lost sync"
                    );
                    drop(sock);
                    joins.push(h);
                }
                ProtocolFault::TruncatedFrame => {
                    // Header promises more bytes than arrive; closing our
                    // write half must unblock the daemon, not hang it.
                    let (mut sock, h) = raw_connect(&server);
                    sock.write_all(&wire).expect("send truncated");
                    sock.flush().unwrap();
                    sock.shutdown(Shutdown::Write).unwrap();
                    let _ = read_reply(&sock); // EOF — nobody to reply to
                    drop(sock);
                    h.join().expect("daemon thread must exit cleanly");
                }
                ProtocolFault::MidRequestDisconnect => {
                    // Vanish mid-frame without so much as a shutdown.
                    let (mut sock, h) = raw_connect(&server);
                    sock.write_all(&wire).expect("send partial");
                    sock.flush().unwrap();
                    drop(sock);
                    h.join().expect("daemon thread must exit cleanly");
                }
                ProtocolFault::SlowLoris => {
                    // The frame is clean but dribbles in: the daemon
                    // waits it out and answers normally.
                    let (mut sock, h) = raw_connect(&server);
                    let mid = wire.len() / 2;
                    sock.write_all(&wire[..mid]).unwrap();
                    sock.flush().unwrap();
                    std::thread::sleep(std::time::Duration::from_millis(15));
                    sock.write_all(&wire[mid..]).unwrap();
                    sock.flush().unwrap();
                    let reply = read_reply(&sock)
                        .unwrap_or_else(|e| panic!("{fault:?}/{case}: no reply: {e}"));
                    assert_eq!(reply.get::<bool>("ok").unwrap(), true, "{fault:?}/{case}");
                    drop(sock);
                    joins.push(h);
                }
                ProtocolFault::DeadlineStorm => {
                    // A flood of impossible deadlines: each is a typed
                    // `deadline` failure, none wedges the daemon.
                    let (mut cl, h) = connect(&server);
                    for _ in 0..4 {
                        let r = cl
                            .call(
                                Op::ReportSlack,
                                Some(1),
                                obj([("min_epoch", 999_u64.to_json())]),
                            )
                            .unwrap_or_else(|e| panic!("{fault:?}/{case}: {e}"));
                        assert_eq!(r.code(), Some("deadline"), "{fault:?}/{case}: {:?}", r.error);
                    }
                    drop(cl);
                    joins.push(h);
                }
            }

            // Liveness probe after every episode: fresh connection, the
            // committed epoch still serves bit-exact.
            let (mut probe, ph) = connect(&server);
            let rep = probe
                .call(Op::ReportSlack, None, Json::Null)
                .unwrap_or_else(|e| panic!("{fault:?}/{case}: daemon dead after episode: {e}"));
            assert!(rep.ok, "{fault:?}/{case}: {:?}", rep.error);
            assert_eq!(
                slack_bits(&rep.result),
                truth0,
                "{fault:?}/{case}: storm must not perturb the committed epoch"
            );
            drop(probe);
            joins.push(ph);
        }
    }

    // A panic inside dispatch is isolated to its request: same
    // connection keeps working, and the supervisor counted it.
    let (mut cl, h) = connect(&server);
    let boom = cl.call(Op::DebugPanic, None, Json::Null).expect("reply");
    assert_eq!(boom.code(), Some("internal"), "{:?}", boom.error);
    let pong = cl.call(Op::Ping, None, Json::Null).expect("survives panic");
    assert!(pong.ok);
    assert!(server.counters().panics_isolated.load(Ordering::Relaxed) >= 1);

    // Every fault left a service-side incident trail.
    let inc = cl.call(Op::Incidents, None, Json::Null).unwrap();
    assert!(inc.result.get::<u64>("total").unwrap() > 0);

    // The payoff: the writer's next commit after the whole storm is
    // bit-identical to the fault-free twin — no half-committed state,
    // no drifted arrays.
    let up = cl.call(Op::Update, None, update_params()).unwrap();
    assert!(up.ok, "post-storm writer failed: {:?}", up.error);
    assert_eq!(up.result.get::<u64>("epoch").unwrap(), 1);
    let post = cl.call(Op::ReportSlack, None, Json::Null).unwrap();
    assert_eq!(
        slack_bits(&post.result),
        truth1,
        "post-storm commit diverged from the fault-free run"
    );

    drop(cl);
    h.join().unwrap();
    for j in joins {
        j.join().expect("connection thread");
    }
}
