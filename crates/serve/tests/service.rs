//! End-to-end service behavior over the real protocol: reads, writes,
//! admission control, degradation tiers, deadlines (including the
//! wall-clock overshoot backstop), incidents, stats, and shutdown.

mod common;

use common::{build_engine, connect, slack_bits};
use insta_serve::{Op, ServeConfig, Server};
use insta_support::json::{obj, Json, ToJson};
use std::sync::atomic::Ordering;

fn delta_params(arc: u32, mean: f64, sigma: f64) -> Json {
    obj([(
        "deltas",
        Json::Arr(vec![obj([
            ("arc", u64::from(arc).to_json()),
            ("mean", Json::Arr(vec![mean.to_json(), mean.to_json()])),
            ("sigma", Json::Arr(vec![sigma.to_json(), sigma.to_json()])),
        ])]),
    )])
}

#[test]
fn reads_and_writes_round_trip_bit_exactly() {
    let server = Server::new(build_engine(21, 8), ServeConfig::default());
    let (mut cl, h) = connect(&server);

    let pong = cl.call(Op::Ping, None, Json::Null).unwrap();
    assert!(pong.ok);
    assert_eq!(pong.result.get::<bool>("pong").unwrap(), true);

    // The served slacks are bit-identical to a twin engine's: f64s
    // survive the JSON wire via shortest round-trip formatting.
    let twin = build_engine(21, 8);
    let golden: Vec<u64> = twin.report().slacks.iter().map(|s| s.to_bits()).collect();
    let rep = cl.call(Op::ReportSlack, None, Json::Null).unwrap();
    assert!(rep.ok);
    assert_eq!(rep.epoch, 0);
    assert_eq!(slack_bits(&rep.result), golden);
    assert_eq!(rep.result.get::<bool>("degraded").unwrap(), false);

    // A committed write bumps the epoch and swaps the snapshot.
    let up = cl
        .call(Op::Update, None, delta_params(0, 40.0, 4.0))
        .unwrap();
    assert!(up.ok, "update failed: {:?}", up.error);
    assert_eq!(up.result.get::<u64>("epoch").unwrap(), 1);
    let mut twin2 = build_engine(21, 8);
    let golden2: Vec<u64> = twin2
        .update_timing(&[insta_refsta::eco::ArcDelta {
            arc: 0,
            mean: [40.0; 2],
            sigma: [4.0; 2],
        }])
        .unwrap()
        .slacks
        .iter()
        .map(|s| s.to_bits())
        .collect();
    let rep2 = cl.call(Op::ReportSlack, None, Json::Null).unwrap();
    assert_eq!(rep2.epoch, 1);
    assert_eq!(slack_bits(&rep2.result), golden2);
    assert_ne!(golden, golden2, "the delta must have moved some slack");
    assert_eq!(server.counters().snapshot_swaps.load(Ordering::Relaxed), 1);

    // Endpoint selection and range checking.
    let sel = cl
        .call(
            Op::ReportSlack,
            None,
            obj([("endpoints", Json::Arr(vec![0_u64.to_json()]))]),
        )
        .unwrap();
    assert_eq!(slack_bits(&sel.result), vec![golden2[0]]);
    let oob = cl
        .call(
            Op::ReportSlack,
            None,
            obj([("endpoints", Json::Arr(vec![999_999_u64.to_json()]))]),
        )
        .unwrap();
    assert_eq!(oob.code(), Some("bad_request"));

    drop(cl);
    h.join().unwrap();
}

#[test]
fn admission_cap_rejects_with_retry_hint_and_records_incidents() {
    let cfg = ServeConfig {
        max_inflight: 1,
        enable_debug_ops: true,
        ..ServeConfig::default()
    };
    let server = Server::new(build_engine(22, 4), cfg);

    // Occupy the single slot with a stalled read on its own connection.
    let (mut staller, sh) = connect(&server);
    let srv = server.clone();
    let stall = std::thread::spawn(move || {
        let r = staller
            .call(Op::DebugStall, None, obj([("ms", 300_u64.to_json())]))
            .unwrap();
        assert!(r.ok);
        staller
    });
    // Wait until the slot is actually held.
    while srv.counters().accepted.load(Ordering::Relaxed) == 0 {
        std::thread::yield_now();
    }
    std::thread::sleep(std::time::Duration::from_millis(20));

    let (mut cl, h) = connect(&server);
    let rej = cl.call(Op::ReportSlack, None, Json::Null).unwrap();
    assert_eq!(rej.code(), Some("overloaded"), "{:?}", rej.error);
    let (_, _, retry) = rej.error.clone().unwrap();
    assert!(retry.unwrap() > 0, "overload must carry retry_after_ms");

    // Control ops still work at full house, and the rejection landed in
    // the incident ring with the request id.
    let inc = cl.call(Op::Incidents, None, Json::Null).unwrap();
    assert!(inc.ok);
    let rows = inc.result.field("incidents").unwrap().as_arr().unwrap();
    assert!(
        rows.iter().any(|r| {
            r.get::<String>("category").unwrap() == "overloaded"
                && r.get::<u64>("request_id").unwrap() == rej.id
        }),
        "overload rejection missing from incidents: {rows:?}"
    );
    assert!(server.counters().rejected_overload.load(Ordering::Relaxed) >= 1);

    let mut staller = stall.join().unwrap();
    let bye = staller.call(Op::Ping, None, Json::Null).unwrap();
    assert!(bye.ok);
    drop(staller);
    drop(cl);
    sh.join().unwrap();
    h.join().unwrap();
}

#[test]
fn degradation_sheds_heavies_then_serves_stale_reads_but_never_the_writer() {
    let cfg = ServeConfig {
        max_inflight: 1,
        shed_pressure: 3,
        snapshot_only_pressure: 9,
        enable_debug_ops: true,
        ..ServeConfig::default()
    };
    let server = Server::new(build_engine(23, 4), cfg);

    // Hold the slot so every read rejection pumps pressure.
    let (mut staller, sh) = connect(&server);
    let srv = server.clone();
    let stall = std::thread::spawn(move || {
        let r = staller
            .call(Op::DebugStall, None, obj([("ms", 150_u64.to_json())]))
            .unwrap();
        assert!(r.ok);
        staller
    });
    while srv.counters().accepted.load(Ordering::Relaxed) == 0 {
        std::thread::yield_now();
    }
    std::thread::sleep(std::time::Duration::from_millis(20));

    let (mut cl, h) = connect(&server);
    // One rejection → pressure 3 → ShedHeavy: batch work is refused.
    let rej = cl.call(Op::ReportSlack, None, Json::Null).unwrap();
    assert_eq!(rej.code(), Some("overloaded"));
    let shed = cl
        .call(Op::Batch, None, obj([("scenarios", Json::Arr(vec![]))]))
        .unwrap();
    assert_eq!(shed.code(), Some("shed"), "{:?}", shed.error);

    // Keep pumping until SnapshotOnly, then let the staller drain so the
    // next read can actually win a slot — pressure persists past the
    // overload itself (it decays one step per completion, not on a timer).
    for _ in 0..3 {
        let r = cl.call(Op::ReportSlack, None, Json::Null).unwrap();
        assert_eq!(r.code(), Some("overloaded"));
    }
    let mut staller = stall.join().unwrap();
    let stats = cl.call(Op::Stats, None, Json::Null).unwrap();
    assert_eq!(
        stats.result.get::<String>("tier").unwrap(),
        "snapshot_only",
        "pressure: {:?}",
        stats.result.get::<u64>("pressure")
    );
    let stale = cl
        .call(
            Op::ReportSlack,
            None,
            obj([("min_epoch", 999_u64.to_json())]),
        )
        .unwrap();
    assert!(stale.ok, "{:?}", stale.error);
    assert_eq!(stale.result.get::<bool>("degraded").unwrap(), true);
    assert_eq!(stale.result.get::<u64>("epoch").unwrap(), 0);
    assert!(server.counters().degraded_reports.load(Ordering::Relaxed) >= 1);

    // The writer is exempt from the cap and every tier: it commits even
    // at snapshot_only.
    let up = cl.call(Op::Update, None, delta_params(1, 25.0, 2.0)).unwrap();
    assert!(up.ok, "writer must never be dropped: {:?}", up.error);
    assert_eq!(up.result.get::<u64>("epoch").unwrap(), 1);

    let _ = staller.call(Op::Ping, None, Json::Null);
    drop(staller);
    drop(cl);
    sh.join().unwrap();
    h.join().unwrap();
}

#[test]
fn epoch_wait_times_out_typed_and_deadline_overshoot_is_distinct() {
    let cfg = ServeConfig {
        max_epoch_wait_ms: 20,
        enable_debug_ops: true,
        ..ServeConfig::default()
    };
    let server = Server::new(build_engine(24, 4), cfg);
    let (mut cl, h) = connect(&server);

    // A min_epoch wait that can't be satisfied fails with `deadline`
    // (the engine was never touched — nothing to roll back).
    let wait = cl
        .call(
            Op::ReportSlack,
            Some(30),
            obj([("min_epoch", 7_u64.to_json())]),
        )
        .unwrap();
    assert_eq!(wait.code(), Some("deadline"), "{:?}", wait.error);

    // A read that *finishes* but blows its budget is a distinct error:
    // the kernels' per-level polls can't see a stall inside one op.
    let late = cl
        .call(Op::DebugStall, Some(10), obj([("ms", 60_u64.to_json())]))
        .unwrap();
    assert_eq!(late.code(), Some("deadline_overshoot"), "{:?}", late.error);
    assert!(server.counters().deadline_overshoot.load(Ordering::Relaxed) >= 1);
    assert!(server.counters().deadline_cancelled.load(Ordering::Relaxed) >= 1);

    drop(cl);
    h.join().unwrap();
}

/// Satellite regression: a writer stalled *between* the last per-level
/// cancellation poll and the commit decision must roll back and report
/// `deadline_overshoot` — never publish, never half-commit.
#[test]
fn overshot_writer_rolls_back_instead_of_committing_late() {
    let cfg = ServeConfig {
        stall_writer_ms: 60,
        ..ServeConfig::default()
    };
    let server = Server::new(build_engine(25, 8), cfg);
    let before: Vec<u64> = server
        .snapshot()
        .report()
        .unwrap()
        .slacks
        .iter()
        .map(|s| s.to_bits())
        .collect();
    let (mut cl, h) = connect(&server);

    let up = cl
        .call(Op::Update, Some(20), delta_params(0, 80.0, 8.0))
        .unwrap();
    assert_eq!(up.code(), Some("deadline_overshoot"), "{:?}", up.error);
    assert_eq!(up.epoch, 0, "nothing may have been published");
    assert_eq!(server.counters().snapshot_swaps.load(Ordering::Relaxed), 0);

    // The rollback is bit-perfect: the same update without a deadline
    // starts from pristine state and commits cleanly.
    let rep = cl.call(Op::ReportSlack, None, Json::Null).unwrap();
    assert_eq!(slack_bits(&rep.result), before, "state must be untouched");
    let retry = cl.call(Op::Update, None, delta_params(0, 80.0, 8.0)).unwrap();
    assert!(retry.ok, "{:?}", retry.error);
    assert_eq!(retry.result.get::<u64>("epoch").unwrap(), 1);

    drop(cl);
    h.join().unwrap();
}

#[test]
fn stats_journal_and_perf_surfaces_are_live() {
    let server = Server::new(build_engine(26, 4), ServeConfig::default());
    let (mut cl, h) = connect(&server);

    let _ = cl.call(Op::ReportSlack, None, Json::Null).unwrap();
    let _ = cl.call(Op::Update, None, delta_params(2, 15.0, 1.5)).unwrap();
    let at = cl
        .call(Op::ReportAt, None, obj([("node", 0_u64.to_json())]))
        .unwrap();
    assert!(at.ok);
    let perf = cl.call(Op::PerfReport, None, Json::Null).unwrap();
    assert!(perf.ok, "perf_report must serve (empty when not tracing)");

    let stats = cl.call(Op::Stats, None, Json::Null).unwrap();
    assert!(stats.ok);
    let engine = stats.result.field("engine").unwrap();
    assert_eq!(engine.get::<u64>("epoch").unwrap(), 1);
    assert_eq!(engine.get::<u64>("sessions_committed").unwrap(), 1);
    let service = stats.result.field("service").unwrap();
    assert!(service.get::<u64>("accepted").unwrap() >= 4);
    assert_eq!(service.get::<u64>("snapshot_swaps").unwrap(), 1);

    // The journal is JSONL with one event per request, carrying ids.
    let journal = cl.call(Op::Journal, None, Json::Null).unwrap();
    let jsonl = journal.result.as_str().unwrap();
    assert!(jsonl.lines().count() >= 5, "journal too short:\n{jsonl}");
    assert!(jsonl.contains("report_slack") && jsonl.contains("update"));
    for line in jsonl.lines() {
        insta_support::json::parse(line).expect("journal lines parse");
    }

    // Gradients run in a rolled-back session: committed state unmoved.
    let g = cl.call(Op::Gradient, None, Json::Null).unwrap();
    assert!(g.ok, "{:?}", g.error);
    assert!(g.result.get::<u64>("n_arcs").unwrap() > 0);
    assert!(g.result.get::<f64>("l1").unwrap().is_finite());
    let stats2 = cl.call(Op::Stats, None, Json::Null).unwrap();
    assert_eq!(
        stats2.result.field("engine").unwrap().get::<u64>("epoch").unwrap(),
        1,
        "gradient must not commit an epoch"
    );

    drop(cl);
    h.join().unwrap();
}

#[test]
fn shutdown_is_acknowledged_then_connections_wind_down() {
    let server = Server::new(build_engine(27, 4), ServeConfig::default());
    let (mut cl, h) = connect(&server);
    let bye = cl.call(Op::Shutdown, None, Json::Null).unwrap();
    assert!(bye.ok);
    assert!(server.shutdown_token().is_cancelled());
    // The acknowledging connection closes right after the reply.
    assert!(cl.call(Op::Ping, None, Json::Null).is_err());
    h.join().unwrap();
    // New connections are refused with a typed error or wound down.
    let (mut late, h2) = connect(&server);
    match late.call(Op::Ping, None, Json::Null) {
        Ok(resp) => assert_eq!(resp.code(), Some("shutting_down")),
        Err(_) => {} // loop observed the token before reading
    }
    drop(late);
    h2.join().unwrap();
}

/// Regression: a `shutdown` request must wind down the TCP accept loop
/// on its own — with a blocking `incoming()` the daemon stayed pinned
/// until one more connection happened to arrive.
#[test]
fn tcp_accept_loop_unblocks_on_shutdown() {
    let server = Server::new(build_engine(29, 4), ServeConfig::default());
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let srv = server.clone();
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let r = srv.serve_tcp(listener);
        let _ = tx.send(r);
    });

    let stream = std::net::TcpStream::connect(addr).unwrap();
    let mut cl = insta_serve::Client::new(stream.try_clone().unwrap(), stream);
    let pong = cl.call(Op::Ping, None, Json::Null).unwrap();
    assert!(pong.ok);
    let bye = cl.call(Op::Shutdown, None, Json::Null).unwrap();
    assert!(bye.ok);

    // No further connection arrives: the accept loop must notice the
    // cancelled token by itself.
    rx.recv_timeout(std::time::Duration::from_secs(5))
        .expect("accept loop must exit after shutdown without another connection")
        .expect("accept loop exits cleanly");
}

/// Regression: `Client::send_raw` must put invalid UTF-8 on the wire
/// verbatim (it used to silently send an empty frame), and the daemon
/// must answer it with a typed `protocol` error while keeping frame sync.
#[test]
fn invalid_utf8_frame_body_is_rejected_typed_and_connection_survives() {
    let server = Server::new(build_engine(30, 4), ServeConfig::default());
    let (mut cl, h) = connect(&server);

    cl.send_raw(&[0xFF, 0xFE, b'{', 0x80, b'}']).unwrap();
    let resp = cl.read_response().unwrap();
    assert!(!resp.ok);
    assert_eq!(resp.code(), Some("protocol"), "{:?}", resp.error);

    // The length claim was true, so frame sync survived: the same
    // connection keeps working.
    let pong = cl.call(Op::Ping, None, Json::Null).unwrap();
    assert!(pong.ok);

    drop(cl);
    h.join().unwrap();
}

#[test]
fn debug_ops_are_refused_unless_enabled() {
    let server = Server::new(build_engine(28, 4), ServeConfig::default());
    let (mut cl, h) = connect(&server);
    let r = cl.call(Op::DebugPanic, None, Json::Null).unwrap();
    assert_eq!(r.code(), Some("bad_request"));
    drop(cl);
    h.join().unwrap();
}

#[test]
fn mcmm_batch_serves_scenario_objects_and_merged_view_bit_exactly() {
    use insta_engine::{CornerTransform, ModeMask, Scenario};

    let server = Server::new(build_engine(31, 8), ServeConfig::default());
    let (mut cl, h) = connect(&server);

    // 2 corners (identity + a slow derate) × 2 modes (all endpoints /
    // endpoint 0 excluded), as wire scenario objects.
    let corner_json = |slow: bool| {
        if slow {
            obj([
                ("mean_scale", 1.08_f64.to_json()),
                ("sigma_scale", 1.2_f64.to_json()),
            ])
        } else {
            obj([("mean_scale", 1.0_f64.to_json())])
        }
    };
    let mode_json = |masked: bool| {
        let disabled = if masked { vec![0_u64.to_json()] } else { vec![] };
        obj([("disabled", Json::Arr(disabled))])
    };
    let scenarios: Vec<Json> = [(false, false), (false, true), (true, false), (true, true)]
        .iter()
        .map(|&(slow, masked)| {
            obj([("corner", corner_json(slow)), ("mode", mode_json(masked))])
        })
        .collect();
    let rep = cl
        .call(
            Op::Batch,
            None,
            obj([
                ("scenarios", Json::Arr(scenarios)),
                ("merged", Json::Bool(true)),
            ]),
        )
        .unwrap();
    assert!(rep.ok, "mcmm batch failed: {:?}", rep.error);

    // The twin: the same sweep run directly on an identical engine.
    let mut twin = build_engine(31, 8);
    let sweep: Vec<Scenario> = [(false, false), (false, true), (true, false), (true, true)]
        .iter()
        .map(|&(slow, masked)| {
            let c = if slow {
                CornerTransform::scale(1.08, 1.2)
            } else {
                CornerTransform::IDENTITY
            };
            let m = ModeMask::disabling(if masked { vec![0] } else { vec![] });
            Scenario::default().with_corner(c).with_mode(m)
        })
        .collect();
    let want = twin.evaluate_mcmm(&sweep);

    let rows = rep.result.field("scenarios").unwrap().as_arr().unwrap();
    assert_eq!(rows.len(), 4);
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row.get::<u64>("scenario").unwrap(), i as u64);
        assert!(row.get::<bool>("ok").unwrap());
        let wr = want.scenarios[i].outcome.as_ref().expect("valid scenario");
        // Bit-exact over the wire: shortest round-trip f64 formatting.
        assert_eq!(
            row.get::<f64>("wns_ps").unwrap().to_bits(),
            wr.wns_ps.to_bits(),
            "scenario {i} wns"
        );
        assert_eq!(
            row.get::<f64>("tns_ps").unwrap().to_bits(),
            wr.tns_ps.to_bits(),
            "scenario {i} tns"
        );
    }
    let merged = rep.result.field("merged").unwrap();
    assert_eq!(
        merged.get::<f64>("wns_ps").unwrap().to_bits(),
        want.merged_wns_ps.to_bits()
    );
    assert_eq!(
        merged.get::<f64>("tns_ps").unwrap().to_bits(),
        want.merged_tns_ps.to_bits()
    );
    assert_eq!(
        merged.get::<u64>("n_violations").unwrap(),
        want.merged_violations as u64
    );

    // A generation-1 bare delta-array batch is still served unchanged —
    // no `merged` object appears unless asked for.
    let legacy = cl
        .call(
            Op::Batch,
            None,
            obj([("scenarios", Json::Arr(vec![Json::Arr(vec![])]))]),
        )
        .unwrap();
    assert!(legacy.ok, "legacy batch failed: {:?}", legacy.error);
    assert!(legacy.result.field("merged").is_err());

    drop(cl);
    h.join().unwrap();
}
