//! The MVCC guarantee, observed over the wire: N concurrent protocol
//! readers racing one writer across an epoch swap each see a *wholly*
//! consistent snapshot — bit-identical to the serial ground truth of its
//! epoch, old or new, never a blend.

mod common;

use common::{build_engine, connect, slack_bits};
use insta_refsta::eco::ArcDelta;
use insta_serve::{Op, ServeConfig, Server};
use insta_support::json::{obj, Json, ToJson};

const SEED: u64 = 31;
const K: usize = 8;
const READERS: usize = 4;
const READS_PER_READER: usize = 120;

fn delta() -> ArcDelta {
    ArcDelta {
        arc: 0,
        mean: [60.0; 2],
        sigma: [6.0; 2],
    }
}

#[test]
fn concurrent_readers_see_whole_epochs_never_blends() {
    // Serial ground truth from a twin engine: epoch 0 bits (initial
    // propagation) and epoch 1 bits (after the delta).
    let mut twin = build_engine(SEED, K);
    let truth0: Vec<u64> = twin.report().slacks.iter().map(|s| s.to_bits()).collect();
    let truth1: Vec<u64> = twin
        .update_timing(&[delta()])
        .expect("twin update")
        .slacks
        .iter()
        .map(|s| s.to_bits())
        .collect();
    assert_ne!(truth0, truth1, "the delta must move some slack");

    let server = Server::new(build_engine(SEED, K), ServeConfig::default());
    let mut handles = Vec::new();
    let mut reader_threads = Vec::new();
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(READERS + 1));

    for r in 0..READERS {
        let (mut cl, h) = connect(&server);
        handles.push(h);
        let barrier = std::sync::Arc::clone(&barrier);
        let (truth0, truth1) = (truth0.clone(), truth1.clone());
        reader_threads.push(std::thread::spawn(move || {
            barrier.wait();
            let mut seen = [0usize; 2];
            for i in 0..READS_PER_READER {
                let resp = cl
                    .call(Op::ReportSlack, None, Json::Null)
                    .unwrap_or_else(|e| panic!("reader {r} read {i}: {e}"));
                assert!(resp.ok, "reader {r}: {:?}", resp.error);
                let epoch = resp.result.get::<u64>("epoch").unwrap();
                let bits = slack_bits(&resp.result);
                // The whole-epoch check: every slack bit must match the
                // serial truth of the epoch the response claims. A torn
                // snapshot (old report under a new epoch, or a mid-update
                // mixture) fails on raw bits.
                let truth: &[u64] = match epoch {
                    0 => &truth0,
                    1 => &truth1,
                    other => panic!("reader {r} saw impossible epoch {other}"),
                };
                assert_eq!(
                    bits, *truth,
                    "reader {r} read {i}: epoch {epoch} served blended bits"
                );
                seen[epoch as usize] += 1;
            }
            seen
        }));
    }

    // The writer commits mid-storm on its own connection.
    let (mut writer, wh) = connect(&server);
    handles.push(wh);
    barrier.wait();
    std::thread::sleep(std::time::Duration::from_millis(5));
    let up = writer
        .call(
            Op::Update,
            None,
            obj([(
                "deltas",
                Json::Arr(vec![obj([
                    ("arc", 0_u64.to_json()),
                    ("mean", Json::Arr(vec![60.0.to_json(), 60.0.to_json()])),
                    ("sigma", Json::Arr(vec![6.0.to_json(), 6.0.to_json()])),
                ])]),
            )]),
        )
        .expect("writer update");
    assert!(up.ok, "{:?}", up.error);
    assert_eq!(up.result.get::<u64>("epoch").unwrap(), 1);

    let mut seen = [0usize; 2];
    for t in reader_threads {
        let s = t.join().expect("reader thread");
        seen[0] += s[0];
        seen[1] += s[1];
    }
    assert_eq!(seen[0] + seen[1], READERS * READS_PER_READER);
    assert!(
        seen[1] > 0,
        "at least some reads must land after the swap (writer committed mid-storm)"
    );

    // Post-storm: a min_epoch=1 read observes the new epoch exactly.
    let fresh = writer
        .call(
            Op::ReportSlack,
            None,
            obj([("min_epoch", 1_u64.to_json())]),
        )
        .expect("post-storm read");
    assert!(fresh.ok);
    assert_eq!(slack_bits(&fresh.result), truth1);

    drop(writer);
    for h in handles {
        h.join().expect("connection thread");
    }
}

/// Regression: commit order and publication order must agree. With the
/// snapshot published *after* the writer lock was released, a preempted
/// writer could publish its older epoch over a successor's newer one —
/// a sampler hammering the published cell would observe the epoch go
/// backwards.
#[test]
fn racing_writers_never_regress_the_published_epoch() {
    const WRITERS: usize = 4;
    const COMMITS_PER_WRITER: usize = 6;
    let server = Server::new(build_engine(SEED, K), ServeConfig::default());

    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let sampler = {
        let server = server.clone();
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut last = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let e = server.snapshot().epoch();
                assert!(e >= last, "published epoch regressed: {last} -> {e}");
                last = e;
            }
            last
        })
    };

    let mut writers = Vec::new();
    let mut handles = Vec::new();
    for w in 0..WRITERS {
        let (mut cl, h) = connect(&server);
        handles.push(h);
        writers.push(std::thread::spawn(move || {
            for i in 0..COMMITS_PER_WRITER {
                let mean = 30.0 + (w * COMMITS_PER_WRITER + i) as f64;
                let up = cl
                    .call(
                        Op::Update,
                        None,
                        obj([(
                            "deltas",
                            Json::Arr(vec![obj([
                                ("arc", ((w % 3) as u64).to_json()),
                                ("mean", Json::Arr(vec![mean.to_json(), mean.to_json()])),
                                ("sigma", Json::Arr(vec![3.0.to_json(), 3.0.to_json()])),
                            ])]),
                        )]),
                    )
                    .unwrap_or_else(|e| panic!("writer {w} commit {i}: {e}"));
                assert!(up.ok, "writer {w} commit {i}: {:?}", up.error);
            }
            drop(cl);
        }));
    }
    for t in writers {
        t.join().expect("writer thread");
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let last_seen = sampler.join().expect("sampler thread");

    let total = (WRITERS * COMMITS_PER_WRITER) as u64;
    assert_eq!(server.snapshot().epoch(), total, "every commit published");
    assert!(last_seen <= total);
    for h in handles {
        h.join().expect("connection thread");
    }
}
