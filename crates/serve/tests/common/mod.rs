//! Shared fixtures: an engine built through the reference flow, and an
//! in-process daemon spoken to over a Unix socketpair — the protocol,
//! framing, and threading are all exactly what production connections
//! use; only the transport is in-process.

use insta_engine::{InstaConfig, InstaEngine};
use insta_netlist::generator::{generate_design, GeneratorConfig};
use insta_refsta::{RefSta, StaConfig};
use insta_serve::{Client, Server};
use std::os::unix::net::UnixStream;
use std::thread::JoinHandle;

/// Builds a propagated engine from the small generated design.
pub fn build_engine(seed: u64, k: usize) -> InstaEngine {
    let design = generate_design(&GeneratorConfig::small("serve-test", seed));
    let mut sta = RefSta::new(&design, StaConfig::default()).expect("reference STA");
    sta.full_update(&design);
    let mut engine = InstaEngine::new(
        sta.export_insta_init(),
        InstaConfig {
            top_k: k,
            ..InstaConfig::default()
        },
    )
    .expect("engine init");
    engine.propagate();
    engine
}

/// Opens one client connection against an in-process daemon. The server
/// side runs on its own thread (the production connection model); drop
/// the client to end it.
pub fn connect(server: &Server) -> (Client<UnixStream, UnixStream>, JoinHandle<()>) {
    let (ours, theirs) = UnixStream::pair().expect("socketpair");
    let srv = server.clone();
    let handle = std::thread::spawn(move || {
        let r = theirs.try_clone().expect("clone server half");
        srv.handle_connection(r, theirs);
    });
    let r = ours.try_clone().expect("clone client half");
    (Client::new(r, ours), handle)
}

/// Raw bits of a response's `result.slacks` array.
pub fn slack_bits(result: &insta_support::json::Json) -> Vec<u64> {
    result
        .field("slacks")
        .expect("slacks")
        .as_arr()
        .expect("array")
        .iter()
        .map(|j| j.as_f64().expect("number").to_bits())
        .collect()
}
