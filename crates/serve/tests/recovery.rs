//! Crash-recovery chaos suite: the durability contract under simulated
//! power loss at every [`CrashPoint`], byte damage of every
//! [`DurabilityFault`] class, the startup edge paths, protocol version
//! gating, the publish-condvar wakeup, and a real `kill -9` against the
//! `insta-serve` binary.
//!
//! The contract everywhere: after recovery the engine's slacks are
//! **bit-identical** (`f64::to_bits`) to a crash-free twin that applied
//! exactly the durable commit prefix — torn tails surface as typed
//! incidents and are truncated, never silently replayed; uncommitted
//! writes disappear whole.

mod common;

use common::{build_engine, connect, slack_bits};
use insta_engine::{InstaConfig, InstaEngine};
use insta_refsta::eco::ArcDelta;
use insta_serve::{
    recover, Client, DurabilityConfig, Op, Request, ServeConfig, Server, PROTOCOL_VERSION,
};
use insta_support::{CrashPoint, CrashSwitch, DurabilityFault, FaultPlan};
use insta_support::json::{obj, Json, ToJson};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

const SEED: u64 = 31;
const K: usize = 8;

/// A fresh scratch directory under the system temp dir (unique per test
/// case; wiped before use so reruns start clean).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("insta-recovery-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The deterministic commit storm: op `i` is a propagate every third
/// commit and otherwise an update of a rotating arc — so replay exercises
/// both [`insta_engine::WriterOp`] variants.
fn storm_delta(i: u64) -> ArcDelta {
    ArcDelta {
        arc: (i % 3) as u32,
        mean: [40.0 + i as f64, 42.5 + i as f64],
        sigma: [4.0 + i as f64 / 8.0, 3.25],
    }
}

fn storm_request(i: u64) -> (Op, Json) {
    if i % 3 == 2 {
        return (Op::Propagate, Json::Null);
    }
    let d = storm_delta(i);
    (
        Op::Update,
        obj([(
            "deltas",
            Json::Arr(vec![obj([
                ("arc", u64::from(d.arc).to_json()),
                ("mean", Json::Arr(vec![d.mean[0].to_json(), d.mean[1].to_json()])),
                ("sigma", Json::Arr(vec![d.sigma[0].to_json(), d.sigma[1].to_json()])),
            ])]),
        )]),
    )
}

/// A crash-free twin: a fresh engine with the first `k` storm commits
/// applied through real sessions (exactly what recovery replays).
fn twin_after(k: u64) -> InstaEngine {
    let mut eng = build_engine(SEED, K);
    for i in 0..k {
        let mut s = eng.begin_session();
        if i % 3 == 2 {
            s.propagate().expect("twin propagate");
        } else {
            s.update_timing(&[storm_delta(i)]).expect("twin update");
        }
        s.commit().expect("twin commit");
    }
    eng
}

fn engine_bits(e: &InstaEngine) -> Vec<u64> {
    e.try_report()
        .map(|r| r.slacks.iter().map(|s| s.to_bits()).collect())
        .unwrap_or_default()
}

/// Runs `n` storm commits against a durable server in `dir`, stopping
/// early if an armed crash switch trips. Returns the server's last
/// acked epoch.
fn run_storm(
    server: &Server,
    n: u64,
    stop: impl Fn() -> bool,
) -> u64 {
    let (mut cl, h) = connect(server);
    let mut last_epoch = 0;
    for i in 0..n {
        let (op, params) = storm_request(i);
        let r = cl.call(op, None, params).unwrap();
        assert!(r.ok, "storm commit {i} failed: {:?}", r.error);
        last_epoch = r.result.get::<u64>("epoch").unwrap();
        if stop() {
            break;
        }
    }
    drop(cl);
    h.join().unwrap();
    last_epoch
}

#[test]
fn kill_at_every_crash_point_recovers_the_durable_prefix_bit_exactly() {
    const CRASH_AT: u64 = 3;
    for point in CrashPoint::ALL {
        let dir = scratch(&format!("crash-{point:?}"));
        let switch = CrashSwitch::new(point, CRASH_AT);
        let mut cfg = DurabilityConfig::new(&dir);
        // The cadence lands the checkpoint attempt exactly on the armed
        // commit, so the two checkpoint crash points actually fire.
        cfg.checkpoint_every = CRASH_AT + 1;
        cfg.crash = Some(switch.clone());
        let (server, boot) =
            Server::with_durability(build_engine(SEED, K), ServeConfig::default(), cfg).unwrap();
        assert_eq!(boot.recovered_epoch, 0, "{point:?}: fresh dir must boot clean");
        assert!(boot.incidents.is_empty(), "{point:?}");

        run_storm(&server, 6, || switch.is_tripped());
        assert!(switch.is_tripped(), "{point:?}: the armed crash never fired");
        assert!(server.durability().unwrap().is_dead(), "{point:?}");
        drop(server);

        // What the platter must hold, per the crash-window semantics:
        // a commit vanishes whole before its append, survives whole
        // after it — and a checkpoint crash never loses or doubles
        // anything, because the WAL still covers the epochs.
        let durable = match point {
            CrashPoint::BeforeWalAppend | CrashPoint::MidWalAppend => CRASH_AT,
            _ => CRASH_AT + 1,
        };
        let mut recovered = build_engine(SEED, K);
        let rep = recover(&mut recovered, &DurabilityConfig::new(&dir)).unwrap();
        let twin = twin_after(durable);
        assert_eq!(rep.recovered_epoch, durable, "{point:?}");
        assert_eq!(recovered.epoch(), twin.epoch(), "{point:?}");
        assert_eq!(
            engine_bits(&recovered),
            engine_bits(&twin),
            "{point:?}: recovered slacks must be bit-identical to the crash-free twin"
        );

        match point {
            CrashPoint::BeforeWalAppend | CrashPoint::AfterWalAppend => {
                assert!(rep.incidents.is_empty(), "{point:?}: clean log, no incidents");
                assert!(!rep.wal_truncated, "{point:?}");
            }
            CrashPoint::MidWalAppend => {
                // The torn record is a typed incident and is physically
                // truncated — never silently replayed.
                assert!(rep.wal_truncated, "{point:?}");
                assert_eq!(rep.incidents.len(), 1, "{point:?}: {:?}", rep.incidents);
                assert!(rep.incidents[0].message.contains("truncated"), "{point:?}");
            }
            CrashPoint::MidCheckpoint => {
                // The partial temp file is ignored; the WAL carries all.
                assert_eq!(rep.checkpoint_epoch, None, "{point:?}");
                assert_eq!(rep.replayed, durable, "{point:?}");
                let tmp_left = std::fs::read_dir(&dir).unwrap().any(|e| {
                    e.unwrap().file_name().to_string_lossy().ends_with(".tmp")
                });
                assert!(tmp_left, "{point:?}: the partial checkpoint should be on disk");
            }
            CrashPoint::AfterCheckpointBeforeTruncate => {
                // Checkpoint landed, WAL never truncated: every record is
                // subsumed and none may be double-replayed.
                assert_eq!(rep.checkpoint_epoch, Some(durable), "{point:?}");
                assert_eq!(rep.replayed, 0, "{point:?}: no double replay");
            }
        }

        // A second recovery over the (now repaired) artifacts is clean
        // and lands on the same epoch.
        let mut again = build_engine(SEED, K);
        let rep2 = recover(&mut again, &DurabilityConfig::new(&dir)).unwrap();
        assert!(rep2.incidents.is_empty(), "{point:?}: repair must be idempotent");
        assert_eq!(again.epoch(), durable, "{point:?}");
    }
}

#[test]
fn damaged_wal_bytes_surface_typed_incidents_and_keep_the_valid_prefix() {
    const COMMITS: u64 = 5;
    // One pristine WAL holding the whole storm (checkpoints off).
    let master = scratch("fault-master");
    let mut cfg = DurabilityConfig::new(&master);
    cfg.checkpoint_every = 0;
    let (server, _) =
        Server::with_durability(build_engine(SEED, K), ServeConfig::default(), cfg).unwrap();
    run_storm(&server, COMMITS, || false);
    drop(server);
    let pristine = std::fs::read(master.join("wal.log")).unwrap();

    let plan = FaultPlan::new(0xD00D);
    for (case, fault) in DurabilityFault::ALL
        .into_iter()
        .filter(|f| f.is_byte_level())
        .enumerate()
    {
        let dir = scratch(&format!("fault-{fault:?}"));
        std::fs::create_dir_all(&dir).unwrap();
        let corrupted = plan.corrupt_durable(case as u64, fault, &pristine);
        assert_ne!(corrupted, pristine, "{fault:?} must change the bytes");
        std::fs::write(dir.join("wal.log"), &corrupted).unwrap();

        let mut recovered = build_engine(SEED, K);
        let rep = recover(&mut recovered, &DurabilityConfig::new(&dir)).unwrap();
        assert!(rep.wal_truncated, "{fault:?}: damage must be truncated");
        assert_eq!(rep.incidents.len(), 1, "{fault:?}: {:?}", rep.incidents);
        assert_eq!(rep.incidents[0].category, "durability", "{fault:?}");
        assert!(
            rep.replayed < COMMITS,
            "{fault:?}: the damaged record must not replay"
        );
        // What survives is a valid prefix, bit-identical to its twin.
        let twin = twin_after(rep.replayed);
        assert_eq!(rep.recovered_epoch, rep.replayed, "{fault:?}");
        assert_eq!(recovered.epoch(), twin.epoch(), "{fault:?}");
        assert_eq!(engine_bits(&recovered), engine_bits(&twin), "{fault:?}");

        // The repaired log recovers cleanly the second time.
        let mut again = build_engine(SEED, K);
        let rep2 = recover(&mut again, &DurabilityConfig::new(&dir)).unwrap();
        assert!(rep2.incidents.is_empty(), "{fault:?}");
        assert!(!rep2.wal_truncated, "{fault:?}");
        assert_eq!(again.epoch(), recovered.epoch(), "{fault:?}");
    }
}

#[test]
fn stale_checkpoint_is_rejected_typed_and_wal_replay_rebuilds_from_genesis() {
    const COMMITS: u64 = 5;
    let dir = scratch("stale-ckpt");
    let mut cfg = DurabilityConfig::new(&dir);
    cfg.checkpoint_every = 0; // the WAL holds the full history
    let (server, _) =
        Server::with_durability(build_engine(SEED, K), ServeConfig::default(), cfg).unwrap();
    run_storm(&server, COMMITS, || false);
    drop(server);

    // Drop in a checkpoint from a *different design*: internally valid
    // (magic, CRC, framing all sound) but semantically stale —
    // DurabilityFault::StaleCheckpoint, constructed rather than
    // byte-corrupted.
    let foreign = build_engine(SEED + 900, K);
    let image = insta_serve::wal::encode_checkpoint(
        &insta_engine::EngineDurableState::capture(&foreign),
        &foreign.snapshot(),
    );
    std::fs::write(dir.join("checkpoint-00000000000000000003.ckpt"), image).unwrap();

    let mut recovered = build_engine(SEED, K);
    let rep = recover(&mut recovered, &DurabilityConfig::new(&dir)).unwrap();
    assert_eq!(
        rep.checkpoint_epoch, None,
        "a stale checkpoint must never be accepted"
    );
    assert!(
        rep.incidents.iter().any(|i| i.message.contains("stale")),
        "the rejection must be typed: {:?}",
        rep.incidents
    );
    // Recovery fell back to replaying the WAL from genesis.
    assert_eq!(rep.replayed, COMMITS);
    let twin = twin_after(COMMITS);
    assert_eq!(recovered.epoch(), twin.epoch());
    assert_eq!(engine_bits(&recovered), engine_bits(&twin));
}

#[test]
fn fresh_missing_empty_and_zero_length_wal_startups_are_clean() {
    let cases: [(&str, fn(&PathBuf)); 3] = [
        ("edge-missing", |_dir| {}),
        ("edge-empty", |dir| std::fs::create_dir_all(dir).unwrap()),
        ("edge-zero-wal", |dir| {
            std::fs::create_dir_all(dir).unwrap();
            std::fs::write(dir.join("wal.log"), b"").unwrap();
        }),
    ];
    for (name, prep) in cases {
        let dir = scratch(name);
        prep(&dir);
        let (server, boot) = Server::with_durability(
            build_engine(SEED, K),
            ServeConfig::default(),
            DurabilityConfig::new(&dir),
        )
        .unwrap();
        assert!(boot.incidents.is_empty(), "{name}: {:?}", boot.incidents);
        assert_eq!(boot.recovered_epoch, 0, "{name}");
        assert_eq!(boot.checkpoint_epoch, None, "{name}");
        assert_eq!(boot.replayed, 0, "{name}");
        assert!(!boot.wal_truncated, "{name}");

        // The daemon is immediately serviceable and its first commit is
        // durable across a restart.
        let last = run_storm(&server, 1, || false);
        assert_eq!(last, 1, "{name}");
        drop(server);
        let mut restarted = build_engine(SEED, K);
        let rep = recover(&mut restarted, &DurabilityConfig::new(&dir)).unwrap();
        assert_eq!(rep.recovered_epoch, 1, "{name}");
        assert_eq!(rep.replayed, 1, "{name}");
        assert_eq!(engine_bits(&restarted), engine_bits(&twin_after(1)), "{name}");
    }
}

#[test]
fn checkpoint_only_and_wal_only_directories_recover_bit_exactly() {
    // Checkpoint-only: every commit checkpoints (truncating the WAL);
    // then the WAL file itself is deleted.
    let dir = scratch("ckpt-only");
    let mut cfg = DurabilityConfig::new(&dir);
    cfg.checkpoint_every = 1;
    let (server, _) =
        Server::with_durability(build_engine(SEED, K), ServeConfig::default(), cfg).unwrap();
    run_storm(&server, 3, || false);
    drop(server);
    // Pruning kept the newest two checkpoints.
    let kept: Vec<u64> = insta_serve::wal::list_checkpoints(&dir)
        .unwrap()
        .into_iter()
        .map(|(e, _)| e)
        .collect();
    assert_eq!(kept, vec![3, 2]);
    std::fs::remove_file(dir.join("wal.log")).unwrap();

    let (server, rep) = Server::with_durability(
        build_engine(SEED, K),
        ServeConfig::default(),
        DurabilityConfig::new(&dir),
    )
    .unwrap();
    assert_eq!(rep.checkpoint_epoch, Some(3));
    assert_eq!(rep.replayed, 0);
    assert_eq!(rep.recovered_epoch, 3);
    assert!(rep.incidents.is_empty(), "{:?}", rep.incidents);
    // The served slacks match the twin over the real wire.
    let twin = twin_after(3);
    let golden: Vec<u64> = engine_bits(&twin);
    let (mut cl, h) = connect(&server);
    let r = cl.call(Op::ReportSlack, None, Json::Null).unwrap();
    assert_eq!(r.epoch, 3);
    assert_eq!(slack_bits(&r.result), golden);
    drop(cl);
    h.join().unwrap();
    drop(server);

    // WAL-only: checkpoints off, the whole history replays.
    let dir = scratch("wal-only");
    let mut cfg = DurabilityConfig::new(&dir);
    cfg.checkpoint_every = 0;
    let (server, _) =
        Server::with_durability(build_engine(SEED, K), ServeConfig::default(), cfg).unwrap();
    run_storm(&server, 4, || false);
    drop(server);
    assert!(insta_serve::wal::list_checkpoints(&dir).unwrap().is_empty());
    let mut restarted = build_engine(SEED, K);
    let rep = recover(&mut restarted, &DurabilityConfig::new(&dir)).unwrap();
    assert_eq!(rep.checkpoint_epoch, None);
    assert_eq!(rep.replayed, 4);
    assert_eq!(rep.recovered_epoch, 4);
    assert_eq!(engine_bits(&restarted), engine_bits(&twin_after(4)));
}

#[test]
fn torn_tail_restart_seeds_the_incident_ring_and_serves_the_prefix() {
    let dir = scratch("torn-restart");
    let mut cfg = DurabilityConfig::new(&dir);
    cfg.checkpoint_every = 0;
    let (server, _) =
        Server::with_durability(build_engine(SEED, K), ServeConfig::default(), cfg).unwrap();
    run_storm(&server, 4, || false);
    drop(server);
    // Tear the tail: the last record loses its final 5 bytes.
    let wal = dir.join("wal.log");
    let bytes = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &bytes[..bytes.len() - 5]).unwrap();

    let (server, rep) = Server::with_durability(
        build_engine(SEED, K),
        ServeConfig::default(),
        DurabilityConfig::new(&dir),
    )
    .unwrap();
    assert!(rep.wal_truncated);
    assert_eq!(rep.recovered_epoch, 3);

    let (mut cl, h) = connect(&server);
    // The recovery incident is visible in the service incident ring.
    let inc = cl.call(Op::Incidents, None, Json::Null).unwrap();
    let rows = inc.result.field("incidents").unwrap().as_arr().unwrap();
    assert!(
        rows.iter()
            .any(|r| r.get::<String>("category").unwrap() == "durability"),
        "recovery incidents must seed the ring: {rows:?}"
    );
    // Stats: the durability section is live and this process's counters
    // start fresh (they count *this* process's appends, not history).
    let stats = cl.call(Op::Stats, None, Json::Null).unwrap();
    assert_eq!(stats.result.get::<u64>("epoch").unwrap(), 3);
    let dur = stats.result.field("durability").unwrap();
    assert_eq!(dur.get::<bool>("enabled").unwrap(), true);
    assert_eq!(dur.get::<bool>("fsync").unwrap(), true);
    assert_eq!(dur.get::<u64>("wal_records").unwrap(), 0);

    // A post-recovery commit appends to the repaired log...
    let extra = storm_delta(9);
    let r = cl
        .call(
            Op::Update,
            None,
            obj([(
                "deltas",
                Json::Arr(vec![obj([
                    ("arc", u64::from(extra.arc).to_json()),
                    ("mean", Json::Arr(vec![extra.mean[0].to_json(), extra.mean[1].to_json()])),
                    (
                        "sigma",
                        Json::Arr(vec![extra.sigma[0].to_json(), extra.sigma[1].to_json()]),
                    ),
                ])]),
            )]),
        )
        .unwrap();
    assert!(r.ok, "{:?}", r.error);
    assert_eq!(r.result.get::<u64>("epoch").unwrap(), 4);
    let stats = cl.call(Op::Stats, None, Json::Null).unwrap();
    let dur = stats.result.field("durability").unwrap();
    assert_eq!(dur.get::<u64>("wal_records").unwrap(), 1);
    assert!(dur.get::<u64>("fsyncs").unwrap() >= 1);
    drop(cl);
    h.join().unwrap();
    drop(server);

    // ...and the repaired-plus-extended timeline recovers whole.
    let mut again = build_engine(SEED, K);
    let rep2 = recover(&mut again, &DurabilityConfig::new(&dir)).unwrap();
    assert!(rep2.incidents.is_empty(), "{:?}", rep2.incidents);
    assert_eq!(rep2.recovered_epoch, 4);
    let mut twin = twin_after(3);
    let mut s = twin.begin_session();
    s.update_timing(&[extra]).unwrap();
    s.commit().unwrap();
    assert_eq!(engine_bits(&again), engine_bits(&twin));
}

#[test]
fn protocol_version_is_surfaced_and_mismatched_clients_are_refused() {
    let server = Server::new(build_engine(SEED, K), ServeConfig::default());

    // Ping and stats both carry the server's protocol generation.
    let (mut cl, h) = connect(&server);
    let pong = cl.call(Op::Ping, None, Json::Null).unwrap();
    assert_eq!(pong.result.get::<u64>("version").unwrap(), PROTOCOL_VERSION);
    let stats = cl.call(Op::Stats, None, Json::Null).unwrap();
    assert_eq!(stats.result.get::<u64>("version").unwrap(), PROTOCOL_VERSION);
    drop(cl);
    h.join().unwrap();

    // A client declaring a different generation is refused, typed,
    // before dispatch — even for a ping.
    let (cl, h) = connect(&server);
    let mut cl = cl.with_version(Some(PROTOCOL_VERSION + 41));
    let refused = cl.call(Op::Ping, None, Json::Null).unwrap();
    assert_eq!(refused.code(), Some("version_mismatch"), "{:?}", refused.error);
    let (_, msg, _) = refused.error.unwrap();
    assert!(msg.contains("speaks protocol version"), "{msg}");
    drop(cl);
    h.join().unwrap();
    assert!(server.counters().rejected_protocol.load(Ordering::Relaxed) >= 1);

    // A legacy client that omits the field is still served (the gate
    // refuses only a *declared* mismatch), and the refusal above landed
    // in the incident ring.
    let (cl, h) = connect(&server);
    let mut cl = cl.with_version(None);
    assert!(cl.call(Op::Ping, None, Json::Null).unwrap().ok);
    let inc = cl.call(Op::Incidents, None, Json::Null).unwrap();
    let rows = inc.result.field("incidents").unwrap().as_arr().unwrap();
    assert!(
        rows.iter()
            .any(|r| r.get::<String>("category").unwrap() == "version_mismatch"),
        "{rows:?}"
    );
    drop(cl);
    h.join().unwrap();
}

#[test]
fn min_epoch_reader_wakes_on_the_publish_it_asked_for() {
    // A generous wait cap proves the reader wakes on the publish
    // notification, not on the cap running out (the old implementation
    // polled; the condvar must release the waiter as the commit lands).
    let cfg = ServeConfig {
        max_epoch_wait_ms: 10_000,
        ..ServeConfig::default()
    };
    let server = Server::new(build_engine(SEED, K), cfg);
    let (mut reader, rh) = connect(&server);
    let t = std::thread::spawn(move || {
        let started = Instant::now();
        let r = reader
            .call(
                Op::ReportSlack,
                None,
                obj([("min_epoch", 1_u64.to_json())]),
            )
            .unwrap();
        (r, started.elapsed(), reader)
    });
    std::thread::sleep(Duration::from_millis(120));
    let (mut writer, wh) = connect(&server);
    let (op, params) = storm_request(0);
    assert!(writer.call(op, None, params).unwrap().ok);

    let (r, waited, reader) = t.join().unwrap();
    assert!(r.ok, "{:?}", r.error);
    assert_eq!(r.epoch, 1, "the reader must see the commit it waited for");
    assert_eq!(r.result.get::<bool>("degraded").unwrap(), false);
    assert!(
        waited >= Duration::from_millis(100),
        "the reader must actually have blocked ({waited:?})"
    );
    assert!(
        waited < Duration::from_secs(8),
        "the reader must wake on publish, not on the wait cap ({waited:?})"
    );
    drop(reader);
    drop(writer);
    rh.join().unwrap();
    wh.join().unwrap();
}

/// Builds the engine exactly as `insta-serve --gen small:42 --k 8` does
/// (the generator's design *name* participates in generation, so the
/// twin must use the binary's, not the test fixture's).
fn binary_twin() -> InstaEngine {
    let design = insta_netlist::generator::generate_design(
        &insta_netlist::generator::GeneratorConfig::small("small", 42),
    );
    let mut sta =
        insta_refsta::RefSta::new(&design, insta_refsta::StaConfig::default()).unwrap();
    sta.full_update(&design);
    let mut eng = InstaEngine::new(
        sta.export_insta_init(),
        InstaConfig {
            top_k: 8,
            ..InstaConfig::default()
        },
    )
    .unwrap();
    eng.propagate();
    eng
}

fn connect_tcp_with_retry(addr: &str) -> std::net::TcpStream {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match std::net::TcpStream::connect(addr) {
            Ok(s) => return s,
            Err(e) => {
                assert!(
                    Instant::now() < deadline,
                    "insta-serve never listened on {addr}: {e}"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

fn free_port() -> u16 {
    std::net::TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .port()
}

#[test]
fn kill_minus_nine_on_the_real_binary_loses_no_acked_commit() {
    use std::process::{Command, Stdio};
    let dir = scratch("binary-kill9");
    let spawn_daemon = |addr: &str| {
        Command::new(env!("CARGO_BIN_EXE_insta-serve"))
            .args(["--gen", "small:42", "--k", "8", "--tcp", addr])
            .args(["--durability", dir.to_str().unwrap()])
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn insta-serve")
    };

    let addr = format!("127.0.0.1:{}", free_port());
    let mut child = spawn_daemon(&addr);
    let stream = connect_tcp_with_retry(&addr);
    let mut cl = Client::new(stream.try_clone().unwrap(), stream);

    // Acked commits: each response means the WAL record was synced
    // before publication, so all of these must survive the kill.
    const ACKED: u64 = 5;
    let mut last_epoch = 0;
    for i in 0..ACKED {
        let (op, params) = storm_request(i);
        let r = cl.call(op, None, params).unwrap();
        assert!(r.ok, "commit {i}: {:?}", r.error);
        last_epoch = r.result.get::<u64>("epoch").unwrap();
    }
    assert_eq!(last_epoch, ACKED);
    // One more goes out un-acked — then SIGKILL races its commit. It
    // must land whole or vanish whole.
    let (op, params) = storm_request(ACKED);
    let inflight = Request {
        id: 999,
        op,
        deadline_ms: None,
        version: Some(PROTOCOL_VERSION),
        params,
    };
    cl.send_raw(inflight.encode().as_bytes()).unwrap();
    child.kill().expect("SIGKILL");
    child.wait().expect("reap");
    drop(cl);

    // Recover a twin in-process from a *copy* of the artifacts (the
    // restarted binary must repair the originals itself).
    let copy = scratch("binary-kill9-copy");
    std::fs::create_dir_all(&copy).unwrap();
    for entry in std::fs::read_dir(&dir).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), copy.join(entry.file_name())).unwrap();
    }
    let mut twin = binary_twin();
    let rep = recover(&mut twin, &DurabilityConfig::new(&copy)).unwrap();
    assert!(
        rep.recovered_epoch == ACKED || rep.recovered_epoch == ACKED + 1,
        "every acked commit survives, the in-flight one lands whole or not at all \
         (recovered {})",
        rep.recovered_epoch
    );

    // Restart the real binary on the original directory (a fresh port:
    // the killed connection may linger in TIME_WAIT) and compare served
    // slacks bit-for-bit — f64s survive the JSON wire exactly.
    let addr = format!("127.0.0.1:{}", free_port());
    let mut child = spawn_daemon(&addr);
    let stream = connect_tcp_with_retry(&addr);
    let mut cl = Client::new(stream.try_clone().unwrap(), stream);
    let r = cl.call(Op::ReportSlack, None, Json::Null).unwrap();
    assert!(r.ok, "{:?}", r.error);
    assert_eq!(r.epoch, twin.epoch());
    assert_eq!(slack_bits(&r.result), engine_bits(&twin));

    let bye = cl.call(Op::Shutdown, None, Json::Null).unwrap();
    assert!(bye.ok);
    drop(cl);
    child.wait().expect("clean shutdown");
}
