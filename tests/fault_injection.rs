//! Umbrella fault-injection suite: every corruption class the harness
//! knows about, driven through the full ingest pipeline under a fixed
//! seed, with a single contract — **a corrupted snapshot surfaces as a
//! typed error or a finite result, never as a panic**.
//!
//! The pipeline under attack is the real one: snapshot text → JSON parse
//! (`insta_support::json`) → `InstaInit` decode → validation
//! (`InstaEngine::new` in Strict or Repair mode) → propagation →
//! `health_check`. Each stage is allowed to reject with its typed error;
//! whatever survives all of them must produce NaN-free slacks and
//! gradients.
//!
//! Trust mode is deliberately absent here: it is the documented opt-out
//! of exactly these guarantees (see DESIGN.md "Error taxonomy and
//! failure policy").

use insta_sta::engine::{InstaConfig, InstaEngine, ValidationMode};
use insta_sta::netlist::generator::{generate_design, GeneratorConfig};
use insta_sta::refsta::export::InstaInit;
use insta_sta::refsta::{RefSta, StaConfig};
use insta_sta::support::json::parse;
use insta_sta::support::{Fault, FaultPlan, FromJson, ToJson};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

/// Fixed suite seed: every corruption in this file derives from it.
const SUITE_SEED: u64 = 0x1257_FA01_7;
/// Corruptions tried per fault class (per validation mode).
const CASES_PER_FAULT: u64 = 12;

/// The clean snapshot every corruption starts from (built once).
fn clean_init() -> &'static InstaInit {
    static INIT: OnceLock<InstaInit> = OnceLock::new();
    INIT.get_or_init(|| {
        let d = generate_design(&GeneratorConfig::small("fault-inject", 17));
        let mut sta = RefSta::new(&d, StaConfig::default()).expect("build");
        sta.full_update(&d);
        sta.export_insta_init()
    })
}

/// Where in the pipeline a case ended up. Only used for the sanity
/// assertions that both rejection and acceptance actually occur — the
/// real assertion is that `drive_*` returns at all.
type Outcome = &'static str;

/// Drives corrupted snapshot *bytes* through the full ingest pipeline.
fn drive_bytes(bytes: &[u8], mode: ValidationMode) -> Result<Outcome, String> {
    let Ok(text) = std::str::from_utf8(bytes) else {
        return Ok("rejected:utf8");
    };
    let v = match parse(text) {
        Err(e) => {
            // Satellite contract: parse errors carry a source position.
            if e.line > 0 && e.offset > text.len() {
                return Err(format!("parse error offset {} beyond input", e.offset));
            }
            return Ok("rejected:parse");
        }
        Ok(v) => v,
    };
    match InstaInit::from_json(&v) {
        Err(_) => Ok("rejected:decode"),
        Ok(init) => drive_init(init, mode),
    }
}

/// Drives a (possibly corrupted) in-memory snapshot through build,
/// propagation, gradients, and the poison scan.
fn drive_init(init: InstaInit, mode: ValidationMode) -> Result<Outcome, String> {
    let cfg = InstaConfig {
        validation: mode,
        ..InstaConfig::default()
    };
    let mut eng = match InstaEngine::new(init, cfg) {
        Err(_) => return Ok("rejected:validate"),
        Ok(e) => e,
    };
    if eng.try_propagate().is_err() {
        return Ok("rejected:runtime");
    }
    for (i, s) in eng.report().slacks.iter().enumerate() {
        if s.is_nan() {
            return Err(format!("NaN slack at endpoint {i}"));
        }
    }
    if eng.try_forward_lse().is_err() || eng.try_backward_tns().is_err() {
        return Ok("rejected:runtime");
    }
    if eng.health_check().is_err() {
        return Ok("rejected:poison");
    }
    if let Some(g) = eng.arc_gradients().iter().find(|g| g.is_nan()) {
        return Err(format!("NaN gradient {g}"));
    }
    Ok("accepted")
}

/// Runs one case with panics converted into test failures that name the
/// fault class and case index (the reproduction key).
fn no_panic(
    fault: Fault,
    case: u64,
    tag: &str,
    f: impl FnOnce() -> Result<Outcome, String>,
) -> Outcome {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(Ok(outcome)) => outcome,
        Ok(Err(msg)) => panic!("{fault:?} case {case} ({tag}): contract violated: {msg}"),
        Err(_) => panic!("{fault:?} case {case} ({tag}): PANICKED (seed {SUITE_SEED:#x})"),
    }
}

#[test]
fn textual_corruption_never_panics_and_is_mostly_rejected() {
    let plan = FaultPlan::new(SUITE_SEED);
    let text = clean_init().to_json().to_string();
    let mut outcomes: BTreeMap<Outcome, usize> = BTreeMap::new();
    for fault in Fault::ALL.into_iter().filter(|f| f.is_textual()) {
        for case in 0..CASES_PER_FAULT {
            let bytes = plan.corrupt_text(case, fault, &text);
            let o = no_panic(fault, case, "strict", || {
                drive_bytes(&bytes, ValidationMode::Strict)
            });
            *outcomes.entry(o).or_default() += 1;
        }
    }
    // Truncation almost always breaks the parse; a single bit flip can
    // land in a float mantissa and survive every check. Both rejection
    // and full traversal must be exercised, or the sweep proved nothing.
    let rejected: usize = outcomes
        .iter()
        .filter(|(k, _)| k.starts_with("rejected"))
        .map(|(_, n)| n)
        .sum();
    assert!(rejected > 0, "no textual corruption was rejected: {outcomes:?}");
    assert!(
        rejected + outcomes.get("accepted").copied().unwrap_or(0)
            == 2 * CASES_PER_FAULT as usize,
        "unaccounted outcomes: {outcomes:?}"
    );
}

#[test]
fn tree_corruption_never_panics_in_strict_or_repair_mode() {
    let plan = FaultPlan::new(SUITE_SEED);
    let clean = clean_init().to_json();
    let mut strict_rejects = 0usize;
    let mut repair_accepts_a_strict_reject = false;
    for fault in Fault::ALL.into_iter().filter(|f| !f.is_textual()) {
        for case in 0..CASES_PER_FAULT {
            let mut v = clean.clone();
            if !plan.corrupt_json(case, fault, &mut v) {
                continue;
            }
            // Decode straight off the corrupted tree; round-tripping
            // through text is the textual test's job.
            let init = match InstaInit::from_json(&v) {
                Err(_) => continue, // typed decode rejection — fine
                Ok(init) => init,
            };
            let strict = no_panic(fault, case, "strict", || {
                drive_init(init.clone(), ValidationMode::Strict)
            });
            let repair = no_panic(fault, case, "repair", || {
                drive_init(init, ValidationMode::Repair)
            });
            if strict == "rejected:validate" {
                strict_rejects += 1;
                if repair == "accepted" {
                    repair_accepts_a_strict_reject = true;
                }
            }
        }
    }
    assert!(
        strict_rejects > 0,
        "no tree corruption tripped strict validation — the sweep is toothless"
    );
    assert!(
        repair_accepts_a_strict_reject,
        "repair mode never salvaged a snapshot strict rejected"
    );
}

/// Direct struct-level corruption, property-tested: the six ISSUE
/// corruption classes applied to the decoded `InstaInit` (bypassing the
/// JSON layer entirely, as a hostile or buggy producer would).
#[test]
fn struct_level_corruption_never_panics() {
    use insta_sta::support::prop::{for_all, Config};
    for_all(
        Config::cases(96).seed(SUITE_SEED),
        |rng| (rng.bounded_u64(6) as u8, rng.next_u64()),
        |&(class, pick)| {
            let mut init = clean_init().clone();
            corrupt_struct(&mut init, class, pick);
            let outcome = match catch_unwind(AssertUnwindSafe(|| {
                drive_init(init, ValidationMode::Strict)
            })) {
                Ok(r) => r?,
                Err(_) => return Err(format!("class {class} pick {pick:#x} panicked")),
            };
            // Classes 0..=4 poison real data; strict must not accept the
            // snapshot unchanged *and* then produce poisoned output —
            // drive_init already turns that into Err. Any typed outcome
            // is a pass.
            let _ = outcome;
            Ok(())
        },
    );
}

/// Applies one of six deterministic struct-level corruption classes.
fn corrupt_struct(init: &mut InstaInit, class: u8, pick: u64) {
    let at = |len: usize| (pick as usize) % len.max(1);
    match class {
        // NaN / Inf arc delay mean.
        0 => {
            if !init.fanin.is_empty() {
                let i = at(init.fanin.len());
                init.fanin[i].mean[(pick >> 32) as usize % 2] =
                    if pick & 1 == 0 { f64::NAN } else { f64::INFINITY };
            }
        }
        // Negative sigma.
        1 => {
            if !init.fanin.is_empty() {
                let i = at(init.fanin.len());
                init.fanin[i].sigma[(pick >> 32) as usize % 2] = -1.5;
            }
        }
        // Out-of-range arc parent index.
        2 => {
            if !init.fanin.is_empty() {
                let i = at(init.fanin.len());
                init.fanin[i].parent = init.n_nodes as u32 + (pick >> 8) as u32 % 1000;
            }
        }
        // Level inversion: swap two entries of the level-major order.
        3 => {
            if init.order.len() >= 2 {
                let i = at(init.order.len());
                let j = (i + 1 + (pick >> 16) as usize % (init.order.len() - 1))
                    % init.order.len();
                init.order.swap(i, j);
            }
        }
        // Out-of-range source node.
        4 => {
            if !init.sources.is_empty() {
                let i = at(init.sources.len());
                init.sources[i].node = u32::MAX - 7;
            }
        }
        // NaN endpoint required time.
        _ => {
            if !init.endpoints.is_empty() {
                let i = at(init.endpoints.len());
                init.endpoints[i].required_base = f64::NAN;
            }
        }
    }
}

/// The repaired form of every struct-level corruption must itself pass
/// strict validation and propagate to finite results — repair is a real
/// fix, not a reclassification.
#[test]
fn repair_mode_salvages_struct_level_corruption() {
    for class in 0..6u8 {
        for pick in [3u64, 0x9E37_79B9, u64::MAX / 3] {
            let mut init = clean_init().clone();
            corrupt_struct(&mut init, class, pick);
            let outcome = no_panic(Fault::NanNumber, u64::from(class), "repair", || {
                drive_init(init, ValidationMode::Repair)
            });
            assert!(
                outcome == "accepted" || outcome == "rejected:validate",
                "class {class} pick {pick:#x}: repair produced {outcome}"
            );
        }
    }
}

/// Mid-session corruption: every [`SessionFault`] class applied to an
/// otherwise-valid update batch, driven through a transactional session.
/// The contract is the session-layer extension of this suite's theme —
/// no case may panic, every case must end in a typed rejection or an
/// explicit abandon, and after the rollback the engine's report is
/// bit-identical to the pre-session baseline.
#[test]
fn mid_session_corruption_rolls_back_bit_identically() {
    use insta_sta::refsta::eco::ArcDelta;
    use insta_sta::support::rng::Rng;
    use insta_sta::support::SessionFault;

    let d = generate_design(&GeneratorConfig::small("fault-inject", 17));
    let mut golden = RefSta::new(&d, StaConfig::default()).expect("build");
    golden.full_update(&d);
    let mut engine = InstaEngine::new(clean_init().clone(), InstaConfig::default())
        .expect("clean snapshot");
    let baseline: Vec<u64> = engine
        .propagate()
        .slacks
        .iter()
        .map(|s| s.to_bits())
        .collect();

    let plan = FaultPlan::new(SUITE_SEED);
    let delays = golden.delays();
    let id_limit = delays.mean.len() as u32;
    let mut rng = Rng::seed_from_u64(SUITE_SEED ^ 0x5E55);
    let mut rejected = 0usize;

    for &fault in SessionFault::ALL.iter() {
        for case in 0..CASES_PER_FAULT {
            // A small valid batch of exact golden re-annotations, then one
            // seeded corruption on its flat form (stride 4: means, sigmas).
            let mut ids: Vec<u32> = (0..1 + case as usize % 5)
                .map(|_| rng.bounded_u64(id_limit as u64) as u32)
                .collect();
            let mut values: Vec<f64> = ids
                .iter()
                .flat_map(|&a| {
                    let (m, s) = (delays.mean[a as usize], delays.sigma[a as usize]);
                    [m[0], m[1], s[0], s[1]]
                })
                .collect();
            assert!(plan.corrupt_batch(case, fault, &mut ids, &mut values, 4, id_limit));
            let batch: Vec<ArcDelta> = ids
                .iter()
                .enumerate()
                .map(|(i, &arc)| ArcDelta {
                    arc,
                    mean: [values[i * 4], values[i * 4 + 1]],
                    sigma: [values[i * 4 + 2], values[i * 4 + 3]],
                })
                .collect();

            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let mut session = engine.begin_session();
                match session.update_timing(&batch) {
                    Err(e) => {
                        session.rollback(); // no-op after an auto-rollback
                        format!("rejected:{}", e.category())
                    }
                    Ok(_) => {
                        session.rollback();
                        "abandoned".to_string()
                    }
                }
            }));
            let outcome = match outcome {
                Ok(o) => o,
                Err(_) => panic!("{fault:?} case {case}: PANICKED (seed {SUITE_SEED:#x})"),
            };
            if outcome.starts_with("rejected") {
                rejected += 1;
            }
            if fault.rejected_at_validation() {
                assert_eq!(
                    outcome, "rejected:validate",
                    "{fault:?} case {case}: must be rejected before mutation"
                );
            }

            let after: Vec<u64> = engine
                .propagate()
                .slacks
                .iter()
                .map(|s| s.to_bits())
                .collect();
            assert_eq!(
                baseline, after,
                "{fault:?} case {case}: rollback not bit-identical (seed {SUITE_SEED:#x})"
            );
        }
    }
    assert!(rejected > 0, "no corruption was ever rejected");
    let counters = engine.counters();
    assert_eq!(
        counters.sessions_begun,
        SessionFault::ALL.len() as u64 * CASES_PER_FAULT
    );
    assert_eq!(counters.sessions_committed, 0);
    assert_eq!(counters.drift_updates, 0, "rolled-back drift must not stick");
}

/// Batched-evaluation corruption: every [`BatchFault`] class damages
/// exactly one scenario of an S-scenario batch. The quarantine contract
/// (ISSUE 4): only that scenario fails — with the same typed `Validate`
/// error a serial session would raise — while every sibling returns
/// results bit-identical to a clean batch run, the engine's own report
/// stays bit-untouched, and no poison enters the engine state.
#[test]
fn batched_corruption_quarantines_only_the_damaged_scenario() {
    use insta_sta::engine::DeltaSet;
    use insta_sta::refsta::eco::ArcDelta;
    use insta_sta::support::rng::Rng;
    use insta_sta::support::BatchFault;

    const SCENARIOS: usize = 6;

    let d = generate_design(&GeneratorConfig::small("fault-inject", 17));
    let mut golden = RefSta::new(&d, StaConfig::default()).expect("build");
    golden.full_update(&d);
    let mut engine = InstaEngine::new(clean_init().clone(), InstaConfig::default())
        .expect("clean snapshot");
    let baseline: Vec<u64> = engine
        .propagate()
        .slacks
        .iter()
        .map(|s| s.to_bits())
        .collect();

    let plan = FaultPlan::new(SUITE_SEED);
    let delays = golden.delays();
    let id_limit = delays.mean.len() as u32;
    let mut rng = Rng::seed_from_u64(SUITE_SEED ^ 0xBA7C);

    let rebuild = |ids: &[Vec<u32>], values: &[Vec<f64>]| -> Vec<DeltaSet> {
        ids.iter()
            .zip(values)
            .map(|(ids, vals)| {
                DeltaSet::from(
                    ids.iter()
                        .enumerate()
                        .map(|(i, &arc)| ArcDelta {
                            arc,
                            mean: [vals[i * 4], vals[i * 4 + 1]],
                            sigma: [vals[i * 4 + 2], vals[i * 4 + 3]],
                        })
                        .collect::<Vec<_>>(),
                )
            })
            .collect()
    };

    for &fault in BatchFault::ALL.iter() {
        for case in 0..CASES_PER_FAULT {
            // S valid scenarios of exact golden re-annotations in the
            // harness's flat form (stride 4: means, then sigmas) ...
            let mut ids: Vec<Vec<u32>> = (0..SCENARIOS)
                .map(|s| {
                    (0..1 + (case as usize + s) % 4)
                        .map(|_| rng.bounded_u64(id_limit as u64) as u32)
                        .collect()
                })
                .collect();
            let mut values: Vec<Vec<f64>> = ids
                .iter()
                .map(|ids| {
                    ids.iter()
                        .flat_map(|&a| {
                            let (m, s) = (delays.mean[a as usize], delays.sigma[a as usize]);
                            [m[0], m[1], s[0], s[1]]
                        })
                        .collect()
                })
                .collect();
            // ... a clean reference run of the whole batch ...
            let clean = engine.evaluate_batch(&rebuild(&ids, &values));
            // ... then one seeded corruption of exactly one scenario.
            let damaged = plan
                .corrupt_one_scenario(case, fault, &mut ids, &mut values, 4, id_limit)
                .expect("non-empty batch");

            let got = match catch_unwind(AssertUnwindSafe(|| {
                engine.evaluate_batch(&rebuild(&ids, &values))
            })) {
                Ok(got) => got,
                Err(_) => panic!("{fault:?} case {case}: PANICKED (seed {SUITE_SEED:#x})"),
            };

            assert_eq!(got.len(), SCENARIOS);
            for (s, (g, c)) in got.iter().zip(&clean).enumerate() {
                if s == damaged {
                    // The damaged scenario fails exactly where a serial
                    // session would: up-front validation.
                    assert!(fault.rejected_at_validation());
                    let err = g.outcome.as_ref().expect_err("damaged scenario must fail");
                    assert_eq!(
                        err.category(),
                        "validate",
                        "{fault:?} case {case}: wrong rejection {err}"
                    );
                } else {
                    // Siblings are bit-identical to the clean run.
                    let (gr, cr) = (
                        g.outcome.as_ref().expect("sibling quarantined"),
                        c.outcome.as_ref().expect("clean run failed"),
                    );
                    let gb: Vec<u64> = gr.slacks.iter().map(|v| v.to_bits()).collect();
                    let cb: Vec<u64> = cr.slacks.iter().map(|v| v.to_bits()).collect();
                    assert_eq!(
                        gb, cb,
                        "{fault:?} case {case}: scenario {s} drifted from clean run"
                    );
                    assert_eq!(gr.tns_ps.to_bits(), cr.tns_ps.to_bits());
                }
            }

            // The engine itself is untouched and unpoisoned.
            let after: Vec<u64> = engine
                .propagate()
                .slacks
                .iter()
                .map(|s| s.to_bits())
                .collect();
            assert_eq!(
                baseline, after,
                "{fault:?} case {case}: batch mutated the engine (seed {SUITE_SEED:#x})"
            );
            engine.health_check().expect("no poison may enter the engine");
        }
    }

    let counters = engine.counters();
    let batches = 2 * BatchFault::ALL.len() as u64 * CASES_PER_FAULT;
    assert_eq!(counters.batches, batches);
    assert_eq!(counters.batch_scenarios, batches * SCENARIOS as u64);
    // Exactly one quarantine per *corrupted* batch (half of all batches).
    assert_eq!(counters.batch_quarantined, batches / 2);
    assert_eq!(counters.sessions_begun, 0, "fast path must not open sessions");
}
