//! Cross-crate integration tests: the paper's tool-accuracy pipeline
//! (generator → reference engine → export → INSTA → correlation).

use insta_sta::engine::{pearson, InstaConfig, InstaEngine, MismatchStats};
use insta_sta::netlist::generator::{generate_design, GeneratorConfig};
use insta_sta::refsta::{RefSta, StaConfig};

fn golden_slacks(sta: &RefSta) -> Vec<f64> {
    sta.report().endpoints.iter().map(|e| e.slack_ps).collect()
}

/// The Table-I claim at integration scope: a medium design, default
/// Top-K=32, near-perfect endpoint-slack correlation.
#[test]
fn insta_correlates_with_reference_on_medium_design() {
    let mut cfg = GeneratorConfig::medium("int_corr", 71);
    cfg.clock_period_ps = 480.0;
    let design = generate_design(&cfg);
    let mut golden = RefSta::new(&design, StaConfig::default()).expect("build");
    let report = golden.full_update(&design);
    assert!(report.n_violations > 0, "exercise the violating regime");

    let mut engine = InstaEngine::new(golden.export_insta_init(), InstaConfig::default()).expect("valid snapshot");
    let insta_report = engine.propagate().clone();
    let stats = MismatchStats::compute(&insta_report.slacks, &golden_slacks(&golden));
    assert!(
        stats.correlation > 0.9999,
        "correlation {} below the paper's regime",
        stats.correlation
    );
    assert!(stats.worst_abs_ps < 1.0, "worst mismatch {}", stats.worst_abs_ps);
    assert!((insta_report.tns_ps - report.tns_ps).abs() < 1e-6);
    assert_eq!(insta_report.n_violations, report.n_violations);
}

/// Fig. 6's contrast: Top-K=1 without CPPR is pessimistic but still
/// highly correlated; correlation improves monotonically with K.
#[test]
fn correlation_improves_with_top_k() {
    let mut cfg = GeneratorConfig::medium("int_topk", 73);
    cfg.clock_period_ps = 540.0;
    let design = generate_design(&cfg);
    let mut golden = RefSta::new(&design, StaConfig::default()).expect("build");
    golden.full_update(&design);
    let init = golden.export_insta_init();
    let exact = golden_slacks(&golden);

    let mut worst_errors = Vec::new();
    for k in [1usize, 4, 16, 64] {
        let mut engine = InstaEngine::new(
            init.clone(),
            InstaConfig {
                top_k: k,
                ..InstaConfig::default()
            },
        ).expect("valid snapshot");
        let r = engine.propagate().clone();
        let stats = MismatchStats::compute(&r.slacks, &exact);
        assert!(stats.correlation > 0.999, "K={k}: corr {}", stats.correlation);
        worst_errors.push(stats.worst_abs_ps);
    }
    for w in worst_errors.windows(2) {
        assert!(w[1] <= w[0] + 1e-9, "error must shrink with K: {worst_errors:?}");
    }
    assert!(worst_errors.last().unwrap() < &1e-9, "large K must be exact");
}

/// The no-CPPR mode (Fig. 6 left) never reports optimistic slacks.
#[test]
fn no_cppr_mode_is_uniformly_pessimistic() {
    let design = generate_design(&GeneratorConfig::medium("int_nocppr", 79));
    let mut golden = RefSta::new(&design, StaConfig::default()).expect("build");
    golden.full_update(&design);
    let exact = golden_slacks(&golden);
    let mut engine = InstaEngine::new(
        golden.export_insta_init(),
        InstaConfig {
            top_k: 1,
            cppr: false,
            ..InstaConfig::default()
        },
    ).expect("valid snapshot");
    let r = engine.propagate().clone();
    for (i, (&got, &want)) in r.slacks.iter().zip(&exact).enumerate() {
        assert!(
            got <= want + 1e-9,
            "endpoint {i}: no-CPPR slack {got} optimistic vs exact {want}"
        );
    }
}

/// Correlation survives netlist perturbation + re-export (the
/// re-synchronization path the paper describes for accuracy recovery).
#[test]
fn resync_restores_exact_correlation_after_edits() {
    let mut design = generate_design(&GeneratorConfig::medium("int_resync", 83));
    let mut golden = RefSta::new(&design, StaConfig::default()).expect("build");
    golden.full_update(&design);
    // Commit a batch of resizes.
    let ops = insta_sta::sizer::random_changelist(&design, 12, 5);
    for op in &ops {
        design.resize_cell(op.cell, op.to);
    }
    golden.full_update(&design);
    // Fresh export = re-synchronization.
    let mut engine = InstaEngine::new(golden.export_insta_init(), InstaConfig::default()).expect("valid snapshot");
    let r = engine.propagate().clone();
    let stats = MismatchStats::compute(&r.slacks, &golden_slacks(&golden));
    assert!(stats.worst_abs_ps < 1e-9, "resync must be exact: {stats}");
}

/// Plain pearson on the slack vectors (used by the repro harness) agrees
/// with the MismatchStats wrapper.
#[test]
fn pearson_and_mismatch_stats_agree() {
    let design = generate_design(&GeneratorConfig::small("int_pear", 5));
    let mut golden = RefSta::new(&design, StaConfig::default()).expect("build");
    golden.full_update(&design);
    let mut engine = InstaEngine::new(golden.export_insta_init(), InstaConfig::default()).expect("valid snapshot");
    let r = engine.propagate().clone();
    let exact = golden_slacks(&golden);
    let stats = MismatchStats::compute(&r.slacks, &exact);
    let finite: (Vec<f64>, Vec<f64>) = r
        .slacks
        .iter()
        .zip(&exact)
        .filter(|(a, b)| a.is_finite() && b.is_finite())
        .map(|(&a, &b)| (a, b))
        .unzip();
    let direct = pearson(&finite.0, &finite.1).unwrap_or(f64::NAN);
    assert!((stats.correlation - direct).abs() < 1e-12 || (stats.correlation.is_nan() && direct.is_nan()));
}
