//! Cross-crate smoke: the timing service composed through the umbrella
//! crate — reference flow → engine → daemon → protocol round-trip.

use insta_sta::engine::{InstaConfig, InstaEngine};
use insta_sta::netlist::generator::{generate_design, GeneratorConfig};
use insta_sta::refsta::{RefSta, StaConfig};
use insta_sta::serve::{Client, Op, ServeConfig, Server};
use insta_sta::support::json::{obj, Json, ToJson};
use std::os::unix::net::UnixStream;

#[test]
fn service_round_trip_through_the_umbrella_crate() {
    let design = generate_design(&GeneratorConfig::small("umbrella-serve", 5));
    let mut sta = RefSta::new(&design, StaConfig::default()).expect("reference STA");
    sta.full_update(&design);
    let mut engine = InstaEngine::new(sta.export_insta_init(), InstaConfig::default())
        .expect("engine init");
    let golden: Vec<u64> = engine.propagate().slacks.iter().map(|s| s.to_bits()).collect();

    let server = Server::new(engine, ServeConfig::default());
    let (ours, theirs) = UnixStream::pair().expect("socketpair");
    let srv = server.clone();
    let h = std::thread::spawn(move || {
        let r = theirs.try_clone().expect("clone");
        srv.handle_connection(r, theirs);
    });
    let mut cl = Client::new(ours.try_clone().expect("clone"), ours);

    let rep = cl.call(Op::ReportSlack, None, Json::Null).expect("read");
    assert!(rep.ok, "{:?}", rep.error);
    let bits: Vec<u64> = rep
        .result
        .field("slacks")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|j| j.as_f64().unwrap().to_bits())
        .collect();
    assert_eq!(bits, golden, "slack bits must survive the wire");

    let up = cl
        .call(
            Op::Update,
            Some(5_000),
            obj([(
                "deltas",
                Json::Arr(vec![obj([
                    ("arc", 0_u64.to_json()),
                    ("mean", Json::Arr(vec![20.0.to_json(), 20.0.to_json()])),
                    ("sigma", Json::Arr(vec![2.0.to_json(), 2.0.to_json()])),
                ])]),
            )]),
        )
        .expect("write");
    assert!(up.ok, "{:?}", up.error);
    assert_eq!(up.result.get::<u64>("epoch").unwrap(), 1);
    assert_eq!(server.snapshot().epoch(), 1);

    drop(cl);
    h.join().expect("connection thread");
}
