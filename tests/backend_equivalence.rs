//! Public-API multi-backend suite: the statistical backend is a
//! configuration knob, not a fork of the system. Sessions, batch
//! evaluation, and the serve daemon compose identically over the Gaussian
//! POCV and fixed-bin histogram backends, and the histogram's answers
//! converge to POCV's through the same public surfaces an application
//! would use. (The kernel-level bit-identity and CDF-convergence pins
//! live in `crates/insta-core/tests/backend_equivalence.rs`.)

use insta_sta::engine::{
    InstaConfig, InstaEngine, InstaReport, StatBackendKind, StatModelConfig,
};
use insta_sta::netlist::generator::{generate_design, GeneratorConfig};
use insta_sta::refsta::eco::ArcDelta;
use insta_sta::refsta::{RefSta, StaConfig};
use insta_sta::serve::{Client, Op, ServeConfig, Server};
use insta_sta::support::json::Json;
use insta_sta::support::rng::Rng;
use std::os::unix::net::UnixStream;

const SUITE_SEED: u64 = 0xBAC_E9D5 ^ 0x0001;

fn histogram_cfg(bins: u32) -> InstaConfig {
    InstaConfig {
        stat_model: StatModelConfig::FixedBinHistogram {
            bins,
            support_sigmas: 6.0,
        },
        ..InstaConfig::default()
    }
}

fn build(gen: &GeneratorConfig, cfg: InstaConfig) -> (RefSta, InstaEngine) {
    let design = generate_design(gen);
    let mut golden = RefSta::new(&design, StaConfig::default()).expect("build");
    golden.full_update(&design);
    let engine = InstaEngine::new(golden.export_insta_init(), cfg).expect("valid snapshot");
    (golden, engine)
}

fn report_bits(r: &InstaReport) -> Vec<u64> {
    let mut bits = vec![r.wns_ps.to_bits(), r.tns_ps.to_bits(), r.n_violations as u64];
    bits.extend(r.slacks.iter().map(|v| v.to_bits()));
    bits.extend(r.arrivals.iter().map(|v| v.to_bits()));
    bits
}

fn random_valid_batch(golden: &RefSta, rng: &mut Rng, len: usize) -> Vec<ArcDelta> {
    let delays = golden.delays();
    let n_arcs = delays.mean.len() as u64;
    (0..len)
        .map(|_| {
            let arc = rng.bounded_u64(n_arcs) as u32;
            let mean = delays.mean[arc as usize];
            let sigma = delays.sigma[arc as usize];
            ArcDelta {
                arc,
                mean: [mean[0] + rng.next_f64() * 8.0 - 4.0, mean[1] + rng.next_f64() * 8.0 - 4.0],
                sigma: [sigma[0] * (1.0 + rng.next_f64()), sigma[1] * (1.0 + rng.next_f64())],
            }
        })
        .collect()
}

/// Transactional sessions compose with the histogram backend: a session
/// commit followed by propagation is bit-identical to applying the same
/// deltas directly — and rollback restores the pre-session report.
#[test]
fn sessions_compose_with_the_histogram_backend() {
    let gen = GeneratorConfig::small("beq_root_sess", 71);
    let (golden, mut engine) = build(&gen, histogram_cfg(64));
    let baseline = report_bits(engine.propagate());
    let mut rng = Rng::seed_from_u64(SUITE_SEED);
    let batch = random_valid_batch(&golden, &mut rng, 5);

    // Direct application on a clone is the oracle.
    let mut direct = engine.clone();
    direct.reannotate(&batch).expect("valid deltas");
    let want = report_bits(direct.propagate());

    let mut session = engine.begin_session();
    session.update_timing(&batch).expect("valid batch");
    session.commit().expect("open session");
    assert_eq!(report_bits(engine.propagate()), want, "commit path diverged");

    // A rolled-back session leaves the report untouched.
    let mut rng2 = Rng::seed_from_u64(SUITE_SEED ^ 0xB0B);
    let (golden2, mut engine2) = build(&gen, histogram_cfg(64));
    let before = report_bits(engine2.propagate());
    assert_eq!(before, baseline, "fresh build must reproduce the baseline");
    let batch2 = random_valid_batch(&golden2, &mut rng2, 5);
    let mut session = engine2.begin_session();
    session.update_timing(&batch2).expect("valid batch");
    session.rollback();
    assert_eq!(report_bits(engine2.propagate()), baseline, "rollback diverged");
}

/// Batched evaluation through the umbrella crate is bit-identical to
/// serial re-annotation under the histogram backend.
#[test]
fn batch_composes_with_the_histogram_backend() {
    use insta_sta::engine::DeltaSet;
    let gen = GeneratorConfig::small("beq_root_batch", 73);
    let (golden, mut engine) = build(&gen, histogram_cfg(32));
    engine.propagate();
    let mut rng = Rng::seed_from_u64(SUITE_SEED ^ 0x16);
    let scenarios: Vec<DeltaSet> = (0..8)
        .map(|_| DeltaSet { deltas: random_valid_batch(&golden, &mut rng, 3) })
        .collect();

    let results = engine.evaluate_batch(&scenarios);
    for (i, sc) in scenarios.iter().enumerate() {
        let mut serial = engine.clone();
        serial.reannotate(&sc.deltas).expect("valid deltas");
        let want = report_bits(serial.propagate());
        let got = report_bits(results[i].outcome.as_ref().expect("valid scenario"));
        assert_eq!(got, want, "scenario {i} diverged from serial");
    }
}

/// The serve daemon runs unchanged over a histogram-backed engine and
/// reports the active backend on its `stats` surface.
#[test]
fn serve_daemon_reports_the_statistical_backend() {
    let gen = GeneratorConfig::small("beq_root_serve", 79);
    let (_, mut engine) = build(&gen, histogram_cfg(128));
    let golden: Vec<u64> = engine.propagate().slacks.iter().map(|s| s.to_bits()).collect();
    assert_eq!(engine.stat_backend(), StatBackendKind::FixedBinHistogram);

    let server = Server::new(engine, ServeConfig::default());
    let (ours, theirs) = UnixStream::pair().expect("socketpair");
    let srv = server.clone();
    let h = std::thread::spawn(move || {
        let r = theirs.try_clone().expect("clone");
        srv.handle_connection(r, theirs);
    });
    let mut cl = Client::new(ours.try_clone().expect("clone"), ours);

    // Reads over the histogram-backed snapshot serve the same bits the
    // engine produced locally.
    let rep = cl.call(Op::ReportSlack, None, Json::Null).expect("read");
    assert!(rep.ok, "{:?}", rep.error);
    let bits: Vec<u64> = rep
        .result
        .field("slacks")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|j| j.as_f64().unwrap().to_bits())
        .collect();
    assert_eq!(bits, golden, "slack bits must survive the wire");

    // The stats surface names the backend and its resolution.
    let stats = cl.call(Op::Stats, None, Json::Null).expect("stats");
    assert!(stats.ok, "{:?}", stats.error);
    let eng = stats.result.field("engine").expect("engine object");
    assert_eq!(
        eng.get::<String>("stat_backend").expect("stat_backend"),
        "fixed_bin_histogram"
    );
    assert_eq!(eng.get::<u64>("stat_bins").expect("stat_bins"), 128);

    drop(cl);
    h.join().expect("connection thread");
}

/// Through the public API alone, histogram WNS/TNS converge monotonically
/// to the Gaussian answers as bins grow — the same gate the kernel-level
/// suite enforces, phrased the way an application would observe it.
#[test]
fn histogram_report_converges_through_the_public_api() {
    let gen = GeneratorConfig {
        clock_period_ps: 220.0,
        ..GeneratorConfig::small("beq_root_conv", 83)
    };
    let (_, mut gaussian) = build(&gen, InstaConfig::default());
    let g = gaussian.propagate().clone();
    assert_eq!(gaussian.stat_backend(), StatBackendKind::GaussianPocv);
    assert!(g.n_violations > 0, "fixture must violate for TNS to be live");

    let errs: Vec<(f64, f64)> = [16u32, 64, 256]
        .iter()
        .map(|&bins| {
            let (_, mut hist) = build(&gen, histogram_cfg(bins));
            let h = hist.propagate().clone();
            ((h.wns_ps - g.wns_ps).abs(), (h.tns_ps - g.tns_ps).abs())
        })
        .collect();
    assert!(
        errs[0].0 > errs[1].0 && errs[1].0 > errs[2].0,
        "WNS error not monotone: {errs:?}"
    );
    assert!(
        errs[0].1 > errs[1].1 && errs[1].1 > errs[2].1,
        "TNS error not monotone: {errs:?}"
    );
}
