//! Cross-crate integration test: hold analysis parity between the INSTA
//! engine and the reference engine at medium scale.

use insta_sta::engine::{hold_attributes, InstaConfig, InstaEngine};
use insta_sta::netlist::generator::{generate_design, GeneratorConfig};
use insta_sta::refsta::{RefSta, StaConfig};

#[test]
fn insta_hold_matches_reference_on_medium_design() {
    let mut cfg = GeneratorConfig::medium("hold_ix", 41);
    cfg.clock_period_ps = 700.0;
    let design = generate_design(&cfg);
    let mut golden = RefSta::new(&design, StaConfig::default()).expect("build");
    golden.full_update(&design);
    let golden_hold = golden.hold_update(&design);

    let attrs = hold_attributes(&design, &golden);
    let mut engine = InstaEngine::new(golden.export_insta_init(), InstaConfig::default()).expect("valid snapshot");
    let report = engine.propagate_hold(&attrs);

    assert_eq!(report.slacks.len(), golden_hold.endpoints.len());
    let mut finite = 0usize;
    for (i, g) in golden_hold.endpoints.iter().enumerate() {
        if g.slack_ps.is_finite() {
            finite += 1;
            assert!(
                (report.slacks[i] - g.slack_ps).abs() < 1e-9,
                "ep {i}: insta {} vs golden {}",
                report.slacks[i],
                g.slack_ps
            );
        }
    }
    assert!(finite > 50, "medium design must constrain many flop endpoints");
    assert!((report.wns_ps - golden_hold.wns_ps).abs() < 1e-9);
    assert!((report.tns_ps - golden_hold.tns_ps).abs() < 1e-9);

    // Setup analysis still works on the same engine afterwards.
    let setup = engine.propagate().clone();
    assert_eq!(setup.slacks.len(), report.slacks.len());
}
