//! Cross-crate integration test: hold analysis parity between the INSTA
//! engine and the reference engine at medium scale.

use insta_sta::engine::{hold_attributes, InstaConfig, InstaEngine};
use insta_sta::netlist::generator::{generate_design, GeneratorConfig};
use insta_sta::refsta::{RefSta, StaConfig};

#[test]
fn insta_hold_matches_reference_on_medium_design() {
    let mut cfg = GeneratorConfig::medium("hold_ix", 41);
    cfg.clock_period_ps = 700.0;
    let design = generate_design(&cfg);
    let mut golden = RefSta::new(&design, StaConfig::default()).expect("build");
    golden.full_update(&design);
    let golden_hold = golden.hold_update(&design);

    let attrs = hold_attributes(&design, &golden);
    let mut engine = InstaEngine::new(golden.export_insta_init(), InstaConfig::default()).expect("valid snapshot");
    let report = engine.propagate_hold(&attrs);

    assert_eq!(report.slacks.len(), golden_hold.endpoints.len());
    let mut finite = 0usize;
    for (i, g) in golden_hold.endpoints.iter().enumerate() {
        if g.slack_ps.is_finite() {
            finite += 1;
            assert!(
                (report.slacks[i] - g.slack_ps).abs() < 1e-9,
                "ep {i}: insta {} vs golden {}",
                report.slacks[i],
                g.slack_ps
            );
        }
    }
    assert!(finite > 50, "medium design must constrain many flop endpoints");
    assert!((report.wns_ps - golden_hold.wns_ps).abs() < 1e-9);
    assert!((report.tns_ps - golden_hold.tns_ps).abs() < 1e-9);

    // Setup analysis still works on the same engine afterwards.
    let setup = engine.propagate().clone();
    assert_eq!(setup.slacks.len(), report.slacks.len());
}

/// Batched setup scenarios and hold analysis interleave without bleeding
/// into each other on a fixed-seed design: every batched scenario is
/// bit-identical before and after a hold pass (which desyncs the shared
/// Top-K base), and hold slacks keep matching the reference afterwards.
#[test]
fn batched_scenarios_and_hold_interleave_bit_stably() {
    use insta_sta::engine::DeltaSet;
    use insta_sta::refsta::eco::ArcDelta;

    let design = generate_design(&GeneratorConfig::small("hold_ix", 43));
    let mut golden = RefSta::new(&design, StaConfig::default()).expect("build");
    golden.full_update(&design);
    let golden_hold = golden.hold_update(&design);
    let attrs = hold_attributes(&design, &golden);
    let mut engine = InstaEngine::new(golden.export_insta_init(), InstaConfig::default())
        .expect("valid snapshot");
    engine.propagate();

    let delays = golden.delays();
    let scenarios: Vec<DeltaSet> = (0..4)
        .map(|i| {
            let arc = (i * delays.mean.len() / 4) as u32;
            let mean = delays.mean[arc as usize];
            DeltaSet::from(vec![ArcDelta {
                arc,
                mean: [mean[0] + 10.0 * (i + 1) as f64, mean[1] + 10.0 * (i + 1) as f64],
                sigma: delays.sigma[arc as usize],
            }])
        })
        .collect();
    let bits = |reports: &[insta_sta::engine::ScenarioReport]| -> Vec<u64> {
        reports
            .iter()
            .flat_map(|r| {
                r.outcome
                    .as_ref()
                    .expect("clean scenario")
                    .slacks
                    .iter()
                    .map(|s| s.to_bits())
                    .collect::<Vec<_>>()
            })
            .collect()
    };

    let before = bits(&engine.evaluate_batch(&scenarios));
    let hold = engine.propagate_hold(&attrs);
    let after = bits(&engine.evaluate_batch(&scenarios));
    assert_eq!(before, after, "hold pass leaked into batched setup results");

    // Hold still matches the reference after the batched evaluations.
    let hold_again = engine.propagate_hold(&attrs);
    assert_eq!(hold.slacks, hold_again.slacks);
    for (i, g) in golden_hold.endpoints.iter().enumerate() {
        if g.slack_ps.is_finite() {
            assert!(
                (hold_again.slacks[i] - g.slack_ps).abs() < 1e-9,
                "ep {i}: insta {} vs golden {}",
                hold_again.slacks[i],
                g.slack_ps
            );
            assert!(
                (hold_again.arrivals[i] - g.arrival_ps).abs() < 1e-9,
                "ep {i}: min arrival {} vs golden {}",
                hold_again.arrivals[i],
                g.arrival_ps
            );
        }
    }
}
