//! MCMM scenario-lane equivalence suite (ISSUE 10): a lane carrying a
//! corner transform `C` and mode mask `M` must be **bit-identical** to a
//! serial session whose annotations were pre-scaled by `C`
//! ([`InstaEngine::scenario_twin_deltas`]) and whose report was masked by
//! `M` ([`InstaReport::masked`]) — under both statistical backends,
//! across chunk boundaries (S > 64), with quarantine, cancellation,
//! dedup, and the merged worst-corner view all behaving per-lane exactly
//! like the serial twins.

use insta_engine::{
    BatchOptions, CancelToken, CornerTransform, InstaConfig, InstaEngine, InstaError, InstaReport,
    ModeMask, Scenario, ScenarioReport, StatModelConfig,
};
use insta_netlist::generator::{generate_design, GeneratorConfig};
use insta_refsta::eco::ArcDelta;
use insta_refsta::{RefSta, StaConfig};
use insta_sta::support::prop::{for_all, Config};
use insta_support::rng::Rng;

const SUITE_SEED: u64 = 0x3CC1_70AE_5;

/// The two statistical backends the identity contract must hold under.
fn backends() -> [StatModelConfig; 2] {
    [
        StatModelConfig::GaussianPocv,
        StatModelConfig::FixedBinHistogram {
            bins: 32,
            support_sigmas: 6.0,
        },
    ]
}

fn build(seed: u64, cfg: InstaConfig) -> (RefSta, InstaEngine) {
    let design = generate_design(&GeneratorConfig::small("mcmm_eq", seed));
    let mut golden = RefSta::new(&design, StaConfig::default()).expect("build");
    golden.full_update(&design);
    let engine = InstaEngine::new(golden.export_insta_init(), cfg).expect("valid snapshot");
    (golden, engine)
}

/// Every bit of the public report, for exact comparisons.
fn report_bits(r: &InstaReport) -> Vec<u64> {
    let mut bits = vec![r.wns_ps.to_bits(), r.tns_ps.to_bits(), r.n_violations as u64];
    bits.extend(r.slacks.iter().map(|v| v.to_bits()));
    bits.extend(r.arrivals.iter().map(|v| v.to_bits()));
    bits.extend(r.requireds.iter().map(|v| v.to_bits()));
    bits.extend(r.worst_sp.iter().map(|&v| v as u64));
    bits.extend(r.worst_rf.iter().map(|&v| v as u64));
    bits
}

/// Random valid delta lists, jittered off the golden delays.
fn random_deltas(golden: &RefSta, rng: &mut Rng) -> Vec<ArcDelta> {
    let delays = golden.delays();
    let n_arcs = delays.mean.len() as u64;
    let len = rng.bounded_u64(6) as usize;
    (0..len)
        .map(|_| {
            let arc = rng.bounded_u64(n_arcs) as u32;
            let mean = delays.mean[arc as usize];
            let sigma = delays.sigma[arc as usize];
            ArcDelta {
                arc,
                mean: [
                    mean[0] + rng.next_f64() * 20.0 - 10.0,
                    mean[1] + rng.next_f64() * 20.0 - 10.0,
                ],
                sigma: [
                    sigma[0] * (1.0 + rng.next_f64()),
                    sigma[1] * (1.0 + rng.next_f64()),
                ],
            }
        })
        .collect()
}

/// A random corner: identity about a third of the time, otherwise a mix
/// of scale (around 1) and offset (a few ps) on both axes.
fn random_corner(rng: &mut Rng) -> Option<CornerTransform> {
    match rng.bounded_u64(3) {
        0 => None,
        1 => Some(CornerTransform::scale(
            0.85 + rng.next_f64() * 0.4,
            0.8 + rng.next_f64() * 0.6,
        )),
        _ => Some(CornerTransform {
            mean_scale: 0.9 + rng.next_f64() * 0.25,
            mean_offset_ps: rng.next_f64() * 6.0 - 3.0,
            sigma_scale: 0.9 + rng.next_f64() * 0.3,
            sigma_offset_ps: rng.next_f64() * 0.5,
        }),
    }
}

/// A random mode: no mask about half the time, otherwise up to three
/// random endpoints disabled.
fn random_mode(n_eps: usize, rng: &mut Rng) -> Option<ModeMask> {
    if n_eps == 0 || rng.bounded_u64(2) == 0 {
        return None;
    }
    let k = 1 + rng.bounded_u64(3) as usize;
    Some(ModeMask::disabling(
        (0..k).map(|_| rng.bounded_u64(n_eps as u64) as usize),
    ))
}

/// Random full MCMM scenarios: deltas × corner × mode.
fn random_scenarios(golden: &RefSta, n_eps: usize, rng: &mut Rng, s: usize) -> Vec<Scenario> {
    (0..s)
        .map(|_| {
            let mut sc = Scenario::from(random_deltas(golden, rng));
            if let Some(c) = random_corner(rng) {
                sc = sc.with_corner(c);
            }
            if let Some(m) = random_mode(n_eps, rng) {
                sc = sc.with_mode(m);
            }
            sc
        })
        .collect()
}

/// The serial twin reference: per scenario, one checkpoint/rollback
/// session on a clone of the engine, re-annotated with the pre-scaled
/// twin deltas and masked by the scenario's mode.
fn serial_twin_reference(
    engine: &InstaEngine,
    scenarios: &[Scenario],
) -> Vec<Result<InstaReport, String>> {
    let mut clone = engine.clone();
    scenarios
        .iter()
        .map(|sc| {
            let twin = clone.scenario_twin_deltas(sc);
            let mut session = clone.begin_session();
            let outcome = session.update_timing(&twin);
            session.rollback();
            outcome
                .map(|r| match &sc.mode {
                    Some(m) if m.disables_any() => r.masked(m),
                    _ => r,
                })
                .map_err(|e| e.category().to_string())
        })
        .collect()
}

fn assert_lanes_match(
    got: &[ScenarioReport],
    want: &[Result<InstaReport, String>],
) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!("{} reports for {} scenarios", got.len(), want.len()));
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        if g.scenario != i {
            return Err(format!("scenario index {} at position {i}", g.scenario));
        }
        match (&g.outcome, w) {
            (Ok(gr), Ok(wr)) => {
                if report_bits(gr) != report_bits(wr) {
                    return Err(format!("scenario {i}: report differs from serial twin"));
                }
            }
            (Err(ge), Err(we)) => {
                if ge.category() != we {
                    return Err(format!(
                        "scenario {i}: error category {} vs twin {we}",
                        ge.category()
                    ));
                }
            }
            (Ok(_), Err(we)) => return Err(format!("scenario {i}: Ok, twin failed with {we}")),
            (Err(ge), Ok(_)) => {
                return Err(format!("scenario {i}: {}, twin succeeded", ge.category()))
            }
        }
    }
    Ok(())
}

/// The tentpole identity contract: across generated designs, corner and
/// mode mixes, serial-vs-parallel runners, and **both statistical
/// backends**, every lane of `evaluate_scenarios` is bit-identical to
/// its pre-scaled, masked serial-session twin — and the sweep leaves the
/// engine's own report untouched.
#[test]
fn mcmm_lanes_match_prescaled_masked_serial_twins() {
    for backend in backends() {
        for_all(
            Config::cases(10).seed(SUITE_SEED),
            |rng| {
                (
                    rng.bounded_u64(64),         // design seed
                    rng.next_u64(),              // scenario stream
                    rng.bounded_u64(2) as usize, // thread pick
                )
            },
            |&(dseed, stream, threads_idx)| {
                let cfg = InstaConfig {
                    n_threads: [1usize, 4][threads_idx],
                    stat_model: backend.clone(),
                    ..InstaConfig::default()
                };
                let (golden, mut engine) = build(dseed, cfg);
                engine.propagate();
                let base_bits = report_bits(engine.report());
                let n_eps = engine.report().slacks.len();

                let mut rng = Rng::seed_from_u64(stream);
                let scenarios = random_scenarios(&golden, n_eps, &mut rng, 7);
                let want = serial_twin_reference(&engine, &scenarios);
                let got = engine.evaluate_scenarios(&scenarios);
                assert_lanes_match(&got, &want)?;

                if report_bits(engine.report()) != base_bits {
                    return Err("MCMM sweep mutated the engine's own report".into());
                }
                Ok(())
            },
        );
    }
}

/// Chunked-lane index integrity (satellite): with S ∈ {64, 65, 128} the
/// sweep spans one, two, and two full lane chunks; `ScenarioReport::scenario`
/// must equal the submission index everywhere, a quarantined scenario in
/// a **non-first** chunk must land at its own index, and every healthy
/// lane must still match its serial twin.
#[test]
fn chunk_boundaries_preserve_scenario_indices() {
    for (s, bad) in [(64usize, 63usize), (65, 64), (128, 70)] {
        let (golden, mut engine) = build(19, InstaConfig::default());
        engine.propagate();
        let n_eps = engine.report().slacks.len();
        let mut rng = Rng::seed_from_u64(SUITE_SEED ^ (s as u64));
        let mut scenarios = random_scenarios(&golden, n_eps, &mut rng, s);
        // Sprinkle extra corners so chunked corner tables are exercised.
        for (i, sc) in scenarios.iter_mut().enumerate() {
            if i % 17 == 0 {
                sc.corner = Some(CornerTransform::scale(1.03, 1.1));
            }
        }
        // One invalid scenario (out-of-range arc) inside the last chunk.
        scenarios[bad] = Scenario::from(vec![ArcDelta {
            arc: u32::MAX - 1,
            mean: [1.0, 1.0],
            sigma: [0.1, 0.1],
        }]);
        let want = serial_twin_reference(&engine, &scenarios);
        let got = engine.evaluate_scenarios(&scenarios);
        assert_eq!(got.len(), s);
        for (i, r) in got.iter().enumerate() {
            assert_eq!(r.scenario, i, "S={s}: index drift at position {i}");
        }
        assert!(got[bad].outcome.is_err(), "S={s}: bad lane must quarantine");
        assert_lanes_match(&got, &want).unwrap_or_else(|e| panic!("S={s}: {e}"));
    }
}

/// Merged worst-corner semantics (satellite): on a seeded random DAG the
/// merged slack per endpoint equals the elementwise serial minimum over
/// the per-corner twin reports, `merged_scenario` names the first lane
/// attaining it, and the merged aggregates follow the merged slacks.
#[test]
fn merged_slack_is_the_per_corner_serial_minimum() {
    let (_, mut engine) = build(29, InstaConfig::default());
    engine.propagate();
    let corners = [
        CornerTransform::IDENTITY,
        CornerTransform::scale(1.08, 1.2),
        CornerTransform {
            mean_scale: 0.93,
            mean_offset_ps: 2.5,
            sigma_scale: 1.05,
            sigma_offset_ps: 0.1,
        },
    ];
    let scenarios: Vec<Scenario> = corners
        .iter()
        .map(|&c| Scenario::default().with_corner(c))
        .collect();
    let want = serial_twin_reference(&engine, &scenarios);
    let mcmm = engine.evaluate_mcmm(&scenarios);
    assert_lanes_match(&mcmm.scenarios, &want).expect("per-lane equivalence");

    let reports: Vec<&InstaReport> =
        want.iter().map(|w| w.as_ref().expect("valid corner")).collect();
    let n_eps = reports[0].slacks.len();
    let mut wns = f64::INFINITY;
    let mut tns = 0.0;
    let mut violations = 0usize;
    for ep in 0..n_eps {
        let (mut min, mut who) = (f64::INFINITY, u32::MAX);
        for (i, r) in reports.iter().enumerate() {
            if r.slacks[ep] < min {
                min = r.slacks[ep];
                who = i as u32;
            }
        }
        assert_eq!(
            mcmm.merged_slacks[ep].to_bits(),
            min.to_bits(),
            "endpoint {ep}: merged slack is not the serial minimum"
        );
        assert_eq!(mcmm.merged_scenario[ep], who, "endpoint {ep}: wrong lane");
        if min < 0.0 {
            tns += min;
            violations += 1;
        }
        wns = wns.min(min);
    }
    assert_eq!(mcmm.merged_wns_ps.to_bits(), wns.to_bits());
    assert_eq!(mcmm.merged_tns_ps.to_bits(), tns.to_bits());
    assert_eq!(mcmm.merged_violations, violations);
    // A pessimistic corner must actually bite somewhere for this test
    // to mean anything — the identity lane cannot own every endpoint.
    assert!(mcmm.merged_scenario.iter().any(|&w| w != 0));
}

/// Mode masking (satellite): a disabled endpoint contributes neither WNS
/// nor TNS nor a violation, but its slack stays readable in the lane's
/// report — and the merged view excludes it from that lane only.
#[test]
fn masked_endpoints_leave_aggregates_but_keep_slacks() {
    let (_, mut engine) = build(37, InstaConfig::default());
    engine.propagate();
    let base = engine.report().clone();
    let n_eps = base.slacks.len();
    assert!(n_eps > 1);
    // Mask the worst endpoint so WNS must move.
    let worst = (0..n_eps)
        .min_by(|&a, &b| base.slacks[a].total_cmp(&base.slacks[b]))
        .expect("endpoints exist");
    let mask = ModeMask::disabling([worst]);
    let scenarios = [Scenario::default().with_mode(mask.clone())];
    let got = engine.evaluate_scenarios(&scenarios);
    let masked = got[0].outcome.as_ref().expect("valid scenario");

    // The slack is still present and bit-identical to the unmasked base…
    assert_eq!(masked.slacks.len(), n_eps);
    assert_eq!(masked.slacks[worst].to_bits(), base.slacks[worst].to_bits());
    // …but the aggregates exclude it, exactly like `masked()` on the base.
    let twin = base.masked(&mask);
    assert_eq!(report_bits(masked), report_bits(&twin));
    if base.slacks[worst] < 0.0 {
        assert!(masked.tns_ps > base.tns_ps, "TNS must shed the masked endpoint");
        assert_eq!(masked.n_violations + 1, base.n_violations);
    }
    assert!(masked.wns_ps >= base.wns_ps);

    // Merged view: the masked lane cannot cover the endpoint, an
    // unmasked lane can.
    let sweep = [
        Scenario::default().with_mode(mask),
        Scenario::default().with_corner(CornerTransform::scale(1.05, 1.0)),
    ];
    let mcmm = engine.evaluate_mcmm(&sweep);
    assert_eq!(mcmm.merged_scenario[worst], 1, "only lane 1 covers the endpoint");
}

/// Cancellation (satellite): a pre-fired token cancels every corner lane
/// with the same per-lane `Cancelled` error a serial session raises, and
/// the engine stays healthy.
#[test]
fn prefired_cancel_cancels_every_corner_lane() {
    let (golden, mut engine) = build(41, InstaConfig::default());
    engine.propagate();
    let base_bits = report_bits(engine.report());
    let n_eps = engine.report().slacks.len();
    let mut rng = Rng::seed_from_u64(SUITE_SEED ^ 0xCA9C);
    let scenarios = random_scenarios(&golden, n_eps, &mut rng, 5);
    let token = CancelToken::new();
    token.cancel();
    let got = engine.evaluate_scenarios_with(
        &scenarios,
        &BatchOptions {
            cancel: Some(token),
            ..BatchOptions::default()
        },
    );
    assert_eq!(got.len(), 5);
    for r in &got {
        assert!(
            matches!(r.outcome, Err(InstaError::Cancelled { .. })),
            "lane {} must cancel",
            r.scenario
        );
    }
    engine.health_check().expect("engine healthy after cancelled sweep");
    assert_eq!(report_bits(engine.report()), base_bits);
}

/// Dedup (satellite): a C-corner × M-mode sweep propagates C lanes. The
/// per-scenario reports are bit-identical to the un-deduped
/// `evaluate_scenarios` run, and the counters record the sharing.
#[test]
fn mode_sweeps_dedup_to_corner_lanes_with_identical_reports() {
    let (_, mut engine) = build(53, InstaConfig::default());
    engine.propagate();
    let n_eps = engine.report().slacks.len();
    let corners = [CornerTransform::IDENTITY, CornerTransform::scale(1.07, 1.15)];
    let modes: Vec<ModeMask> = (0..3)
        .map(|m| ModeMask::disabling([(m * 2) % n_eps, (m * 2 + 1) % n_eps]))
        .collect();
    // C×M sweep, corner-major.
    let sweep: Vec<Scenario> = corners
        .iter()
        .flat_map(|&c| {
            modes
                .iter()
                .map(move |m| Scenario::default().with_corner(c).with_mode(m.clone()))
        })
        .collect();

    let mut undeduped = engine.clone();
    let want = undeduped.evaluate_scenarios(&sweep);
    let before = engine.counters();
    let mcmm = engine.evaluate_mcmm(&sweep);
    let after = engine.counters();

    assert_eq!(mcmm.scenarios.len(), 6);
    for (g, w) in mcmm.scenarios.iter().zip(&want) {
        let (gr, wr) = (
            g.outcome.as_ref().expect("valid scenario"),
            w.outcome.as_ref().expect("valid scenario"),
        );
        assert_eq!(report_bits(gr), report_bits(wr), "dedup changed lane {}", g.scenario);
    }
    assert_eq!(after.mcmm_evaluations, before.mcmm_evaluations + 1);
    // 2 corners propagate, 4 of 6 submissions share a lane.
    assert_eq!(after.mcmm_deduped, before.mcmm_deduped + 4);
    assert_eq!(after.batch_scenarios, before.batch_scenarios + 6);
    assert_eq!(after.mcmm_corner_lanes, before.mcmm_corner_lanes + 1);
}

/// Zero-width corners (satellite): `sigma_scale = 0` collapses every
/// arc distribution to zero width. Across both backends the lane must
/// stay finite (the histogram quantile path clamps instead of dividing
/// by a zero bin width) and bit-identical to its serial twin, whose
/// arrival distributions report σ = 0 exactly.
#[test]
fn zero_sigma_corners_stay_finite_under_both_backends() {
    for backend in backends() {
        for_all(
            Config::cases(6).seed(SUITE_SEED ^ 0x5160),
            |rng| (rng.bounded_u64(64), rng.next_u64()),
            |&(dseed, stream)| {
                let cfg = InstaConfig {
                    stat_model: backend.clone(),
                    ..InstaConfig::default()
                };
                let (golden, mut engine) = build(dseed, cfg);
                engine.propagate();
                let mut rng = Rng::seed_from_u64(stream);
                let zero = CornerTransform {
                    mean_scale: 1.0,
                    mean_offset_ps: 0.0,
                    sigma_scale: 0.0,
                    sigma_offset_ps: 0.0,
                };
                let scenarios =
                    [Scenario::from(random_deltas(&golden, &mut rng)).with_corner(zero)];
                let want = serial_twin_reference(&engine, &scenarios);
                let got = engine.evaluate_scenarios(&scenarios);
                assert_lanes_match(&got, &want)?;

                let r = got[0].outcome.as_ref().map_err(|e| e.to_string())?;
                if !r.slacks.iter().chain(&r.arrivals).all(|v| v.is_finite()) {
                    return Err("zero-width lane produced a non-finite value".into());
                }
                // The twin's propagated distributions must come out
                // finite with a non-negative σ: every arc's σ is scaled
                // to exactly 0 (launch seeds stay corner-invariant), so
                // a quantile path dividing by a zero bin width would
                // surface here as NaN.
                let mut twin = engine.clone();
                twin.reannotate(&twin.scenario_twin_deltas(&scenarios[0]).clone())
                    .map_err(|e| e.to_string())?;
                twin.propagate();
                let mut seen = 0usize;
                for node in 0..64u32 {
                    for rf in 0..2 {
                        if let Some((m, s)) = twin.distribution_at(node, rf) {
                            seen += 1;
                            if !m.is_finite() || !s.is_finite() || s < 0.0 {
                                return Err(format!(
                                    "node {node}/{rf}: ({m}, {s}) not a finite distribution"
                                ));
                            }
                        }
                    }
                }
                if seen == 0 {
                    return Err("no propagated distributions sampled".into());
                }
                Ok(())
            },
        );
    }
}
