//! Transactional-session suite: bit-identical rollback under every seeded
//! mid-session corruption class, bounded cooperative cancellation, drift-
//! audited degradation, and the session lifecycle contract.
//!
//! The load-bearing property (ISSUE 3): *checkpoint → corrupt/abort →
//! rollback → propagate* must reproduce, bit for bit, the report of an
//! engine that never saw the session — across [`SessionFault`] classes,
//! injected worker panics, and random delta batches.

use insta_engine::parallel::chaos;
use insta_engine::{
    CancelToken, InstaConfig, InstaEngine, InstaError, InstaReport, Kernel, SessionStatus,
};
use insta_netlist::generator::{generate_design, GeneratorConfig};
use insta_refsta::eco::ArcDelta;
use insta_refsta::{RefSta, StaConfig};
use insta_support::fault::{FaultPlan, SessionFault};
use insta_support::rng::Rng;
use std::sync::Mutex;
use std::time::Duration;

const SUITE_SEED: u64 = 0x5E55_10F0_3;
const CASES_PER_FAULT: u64 = 8;

/// Serializes tests that arm the process-global chaos hook.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn build(seed: u64) -> (RefSta, InstaEngine) {
    let design = generate_design(&GeneratorConfig::small("sess", seed));
    let mut golden = RefSta::new(&design, StaConfig::default()).expect("build");
    golden.full_update(&design);
    let engine = InstaEngine::new(golden.export_insta_init(), InstaConfig::default())
        .expect("valid snapshot");
    (golden, engine)
}

/// Every bit of the public report, for exact comparisons.
fn report_bits(r: &InstaReport) -> Vec<u64> {
    let mut bits = vec![r.wns_ps.to_bits(), r.tns_ps.to_bits(), r.n_violations as u64];
    bits.extend(r.slacks.iter().map(|v| v.to_bits()));
    bits.extend(r.arrivals.iter().map(|v| v.to_bits()));
    bits.extend(r.requireds.iter().map(|v| v.to_bits()));
    bits.extend(r.worst_sp.iter().map(|&v| v as u64));
    bits.extend(r.worst_rf.iter().map(|&v| v as u64));
    bits
}

/// A random, *valid* delta batch: in-range arcs with finite means and
/// non-negative sigmas derived from the golden engine's exact delays.
fn random_valid_batch(golden: &RefSta, rng: &mut Rng, len: usize) -> Vec<ArcDelta> {
    let delays = golden.delays();
    let n_arcs = delays.mean.len() as u64;
    (0..len)
        .map(|_| {
            let arc = rng.bounded_u64(n_arcs) as u32;
            let jitter = [rng.next_f64() * 10.0 - 5.0, rng.next_f64() * 10.0 - 5.0];
            let mean = delays.mean[arc as usize];
            let sigma = delays.sigma[arc as usize];
            ArcDelta {
                arc,
                mean: [mean[0] + jitter[0], mean[1] + jitter[1]],
                sigma: [sigma[0] * (1.0 + rng.next_f64()), sigma[1] * (1.0 + rng.next_f64())],
            }
        })
        .collect()
}

/// Flattens a batch into the harness's parallel arrays, corrupts it, and
/// rebuilds (stride 4: rise/fall mean then rise/fall sigma).
fn corrupted_batch(
    plan: &FaultPlan,
    case: u64,
    fault: SessionFault,
    batch: &[ArcDelta],
    id_limit: u32,
) -> Vec<ArcDelta> {
    let mut ids: Vec<u32> = batch.iter().map(|d| d.arc).collect();
    let mut values: Vec<f64> = batch
        .iter()
        .flat_map(|d| [d.mean[0], d.mean[1], d.sigma[0], d.sigma[1]])
        .collect();
    assert!(plan.corrupt_batch(case, fault, &mut ids, &mut values, 4, id_limit));
    ids.iter()
        .enumerate()
        .map(|(i, &arc)| ArcDelta {
            arc,
            mean: [values[i * 4], values[i * 4 + 1]],
            sigma: [values[i * 4 + 2], values[i * 4 + 3]],
        })
        .collect()
}

/// The tentpole property: every corruption class, driven through a
/// session and rolled back (automatically on poison, explicitly
/// otherwise), leaves the engine bit-identical to one that never saw the
/// corrupted batch.
#[test]
fn rollback_is_bit_identical_across_all_session_fault_classes() {
    let (golden, mut engine) = build(101);
    let baseline = engine.propagate().clone();
    let baseline_bits = report_bits(&baseline);
    let id_limit = golden.delays().mean.len() as u32;
    let plan = FaultPlan::new(SUITE_SEED);
    let mut rng = Rng::seed_from_u64(SUITE_SEED ^ 0xBA7C);

    for &fault in SessionFault::ALL.iter() {
        for case in 0..CASES_PER_FAULT {
            let valid = random_valid_batch(&golden, &mut rng, 1 + (case as usize % 7));
            let bad = corrupted_batch(&plan, case, fault, &valid, id_limit);

            let mut session = engine.begin_session();
            match session.update_timing(&bad) {
                Err(e) if e.category() == "validate" => {
                    // Up-front rejection: nothing was mutated and the
                    // session stays open for a corrected batch.
                    assert!(session.is_open(), "{fault:?}/{case}");
                    let _ = e;
                    session.rollback();
                }
                Err(e) => {
                    // Poison caught mid-session: already rolled back.
                    assert!(e.poisons_state(), "{fault:?}/{case}: {e}");
                    assert_eq!(session.status(), SessionStatus::RolledBack);
                    drop(session);
                }
                Ok(_) => {
                    // The corruption survived the engine (e.g. a negated
                    // mean or a duplicated entry); abandon the move.
                    assert!(
                        !fault.rejected_at_validation(),
                        "{fault:?}/{case}: engine accepted a must-reject batch"
                    );
                    session.rollback();
                }
            }

            let after = engine.propagate().clone();
            assert_eq!(
                baseline_bits,
                report_bits(&after),
                "{fault:?} case {case}: rollback not bit-identical"
            );
        }
    }

    let c = engine.counters();
    assert_eq!(c.sessions_begun, (SessionFault::ALL.len() as u64) * CASES_PER_FAULT);
    assert_eq!(c.sessions_rolled_back, c.sessions_begun);
    assert_eq!(c.sessions_committed, 0);
    assert_eq!(c.epoch, 0);
    // Rolled-back sessions must not leave drift behind.
    assert_eq!(c.drift_updates, 0);
    assert_eq!(c.drift_mass, 0.0);
}

/// Commit promotes exactly the applied batch: the committed engine matches
/// a fresh engine that applied the same batch directly.
#[test]
fn commit_matches_direct_update_bit_identically() {
    let (golden, mut engine) = build(103);
    engine.propagate();
    let mut rng = Rng::seed_from_u64(SUITE_SEED ^ 0xC0117);
    let batch = random_valid_batch(&golden, &mut rng, 5);

    let mut session = engine.begin_session();
    let report = session.update_timing(&batch).expect("valid batch");
    let epoch = session.commit().expect("open session");
    assert_eq!(epoch, 1);

    let mut direct = InstaEngine::new(golden.export_insta_init(), InstaConfig::default())
        .expect("valid snapshot");
    direct.propagate();
    let direct_report = direct.update_timing(&batch).expect("valid batch");
    assert_eq!(report_bits(&report), report_bits(&direct_report));

    let c = engine.counters();
    assert_eq!((c.sessions_committed, c.epoch), (1, 1));
    assert_eq!(c.incremental_updates, 1);
    assert_eq!(c.drift_updates, 1);
}

/// An injected persistent worker panic mid-session is a fatal Runtime
/// error; the session auto-rolls-back bit-identically.
///
/// Needs a wide design: chaos fires in parallel chunk workers (and the
/// serial retry), and small levels dispatch serially.
#[test]
fn worker_panic_mid_session_rolls_back_bit_identically() {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let mut gen = GeneratorConfig::medium("sess-chaos", 9);
    gen.gates_per_level = 600;
    gen.logic_levels = 6;
    gen.clock_period_ps = 360.0;
    let design = generate_design(&gen);
    let mut golden = RefSta::new(&design, StaConfig::default()).expect("build");
    golden.full_update(&design);
    let mut engine = InstaEngine::new(
        golden.export_insta_init(),
        InstaConfig {
            n_threads: 4,
            ..InstaConfig::default()
        },
    )
    .expect("valid snapshot");
    let baseline_bits = report_bits(&engine.propagate().clone());
    let mut rng = Rng::seed_from_u64(SUITE_SEED ^ 0xCA05);
    let batch = random_valid_batch(&golden, &mut rng, 4);

    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    chaos::arm(Kernel::Forward, 2, true);
    let mut session = engine.begin_session();
    let result = session.update_timing(&batch);
    chaos::disarm();
    std::panic::set_hook(prev);

    let err = result.expect_err("persistent panic is fatal");
    assert_eq!(err.category(), "runtime");
    assert_eq!(session.status(), SessionStatus::RolledBack);
    drop(session);

    engine.health_check().expect("rolled-back state is healthy");
    assert_eq!(baseline_bits, report_bits(&engine.propagate().clone()));
    assert!(engine.incident_log().total() > 0, "fatal incident recorded");
}

/// A pre-fired token cancels at the *first* per-level poll — bounded by
/// one level's work — auto-rolls-back, and leaves a healthy engine.
#[test]
fn prefired_cancel_token_stops_at_the_first_level_poll() {
    let (golden, mut engine) = build(107);
    let baseline_bits = report_bits(&engine.propagate().clone());
    let mut rng = Rng::seed_from_u64(SUITE_SEED ^ 0x70C);
    let batch = random_valid_batch(&golden, &mut rng, 3);

    let token = CancelToken::new();
    token.cancel();
    let mut session = engine.begin_session().with_cancel(token.clone());
    let err = session.update_timing(&batch).expect_err("token already fired");
    let InstaError::Cancelled { kernel, level, elapsed } = &err else {
        panic!("expected Cancelled, got {err}");
    };
    assert_eq!(*kernel, Kernel::Forward);
    assert_eq!(*level, 1, "first polled level");
    assert!(*elapsed < Duration::from_secs(5));
    assert_eq!(session.status(), SessionStatus::Cancelled);
    drop(session);

    engine.health_check().expect("rolled-back state is healthy");
    assert_eq!(baseline_bits, report_bits(&engine.propagate().clone()));
    let c = engine.counters();
    assert_eq!((c.sessions_cancelled, c.sessions_rolled_back), (1, 0));
}

/// An already-expired deadline behaves exactly like a fired token.
#[test]
fn zero_deadline_cancels_and_rolls_back() {
    let (golden, mut engine) = build(109);
    let baseline_bits = report_bits(&engine.propagate().clone());
    let mut rng = Rng::seed_from_u64(SUITE_SEED ^ 0xDEAD);
    let batch = random_valid_batch(&golden, &mut rng, 3);

    let mut session = engine.begin_session().with_deadline(Duration::ZERO);
    let err = session.update_timing(&batch).expect_err("deadline expired");
    assert_eq!(err.category(), "cancelled");
    assert_eq!(session.status(), SessionStatus::Cancelled);
    session.rollback(); // no-op on a closed session

    assert_eq!(baseline_bits, report_bits(&engine.propagate().clone()));
    assert_eq!(engine.counters().sessions_cancelled, 1);
}

/// A closed session refuses further work with a typed error instead of
/// silently mutating, and a dropped-while-open session rolls back.
#[test]
fn session_lifecycle_contract() {
    let (golden, mut engine) = build(111);
    let baseline_bits = report_bits(&engine.propagate().clone());
    let mut rng = Rng::seed_from_u64(SUITE_SEED ^ 0x11FE);
    let batch = random_valid_batch(&golden, &mut rng, 2);

    // Cancelled session refuses new work.
    let mut session = engine.begin_session().with_deadline(Duration::ZERO);
    session.update_timing(&batch).expect_err("deadline expired");
    let err = session.update_timing(&batch).expect_err("session closed");
    assert_eq!(err.category(), "validate");
    assert!(err.to_string().contains("closed"), "{err}");
    assert!(session.commit().is_err(), "cannot commit a closed session");
    // `commit` consumed the session; the engine is back at baseline.
    assert_eq!(baseline_bits, report_bits(&engine.propagate().clone()));

    // Drop-while-open rolls back.
    {
        let mut session = engine.begin_session();
        session.update_timing(&batch).expect("valid batch");
        assert!(session.checkpoint_bytes() > 0);
    }
    assert_eq!(baseline_bits, report_bits(&engine.propagate().clone()));
    let c = engine.counters();
    // The deadline session counts as cancelled, the dropped one as rolled
    // back.
    assert_eq!(c.sessions_rolled_back, 1);
    assert_eq!(c.sessions_cancelled, 1);
    assert_eq!(c.epoch, 0);
}

/// Past the drift budget, updates degrade to propagate + LSE refresh +
/// health gate, and the odometer holds until an explicit reset.
#[test]
fn drift_budget_triggers_degraded_passes_until_reset() {
    let design = generate_design(&GeneratorConfig::small("sess", 113));
    let mut golden = RefSta::new(&design, StaConfig::default()).expect("build");
    golden.full_update(&design);
    let cfg = InstaConfig {
        drift_policy: insta_engine::DriftPolicy {
            max_updates: 2,
            max_touched_mass: f64::INFINITY,
        },
        ..InstaConfig::default()
    };
    let mut engine =
        InstaEngine::new(golden.export_insta_init(), cfg).expect("valid snapshot");
    engine.propagate();
    let mut rng = Rng::seed_from_u64(SUITE_SEED ^ 0xD61F);

    for _ in 0..4 {
        let batch = random_valid_batch(&golden, &mut rng, 2);
        engine.update_timing(&batch).expect("valid batch");
    }
    let c = engine.counters();
    assert_eq!(c.incremental_updates, 4);
    assert!(engine.drift_exceeded());
    // Updates 2, 3 and 4 each reached the 2-update budget.
    assert_eq!(c.degraded_passes, 3);

    engine.reset_drift();
    assert!(!engine.drift_exceeded());
    let batch = random_valid_batch(&golden, &mut rng, 2);
    engine.update_timing(&batch).expect("valid batch");
    assert_eq!(engine.counters().degraded_passes, 3, "fresh budget, fast path");
}

/// Gradients are part of the checkpoint: the differentiable state after a
/// rollback reproduces the pre-session gradients bit-for-bit.
#[test]
fn rollback_restores_differentiable_state() {
    let (golden, mut engine) = build(115);
    engine.propagate();
    engine.forward_lse();
    engine.backward_tns();
    let grads_before: Vec<u64> = engine
        .arc_gradients()
        .iter()
        .map(|g| g.to_bits())
        .collect();
    let mut rng = Rng::seed_from_u64(SUITE_SEED ^ 0x6AD);
    let batch = random_valid_batch(&golden, &mut rng, 6);

    let mut session = engine.begin_session();
    session.update_timing(&batch).expect("valid batch");
    session.forward_lse().expect("lse");
    session.backward_tns().expect("backward");
    session.rollback();

    let grads_after: Vec<u64> = engine
        .arc_gradients()
        .iter()
        .map(|g| g.to_bits())
        .collect();
    assert_eq!(grads_before, grads_after);
}
