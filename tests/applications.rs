//! Cross-crate integration tests for the paper's three applications:
//! the evaluator flow (App 1), gate sizing (App 2), and timing-driven
//! placement (App 3).

use insta_sta::engine::InstaConfig;
use insta_sta::netlist::generator::{generate_design, GeneratorConfig};
use insta_sta::placer::{place, PlacerConfig, PlacerMode};
use insta_sta::refsta::{RefSta, StaConfig};
use insta_sta::sizer::{
    insta_size, random_changelist, reference_size, run_evaluator_flow, InstaSizeConfig,
    ReferenceSizeConfig,
};

/// App 1 end to end: the evaluator flow keeps INSTA within driving
/// accuracy of the exact engine across a whole changelist.
#[test]
fn evaluator_flow_stays_correlated_across_changelist() {
    let mut cfg = GeneratorConfig::medium("app1", 91);
    cfg.clock_period_ps = 560.0;
    let mut design = generate_design(&cfg);
    let ops = random_changelist(&design, 15, 7);
    let result = run_evaluator_flow(
        &mut design,
        &ops,
        StaConfig::default(),
        InstaConfig {
            top_k: 8,
            ..InstaConfig::default()
        },
    );
    assert_eq!(result.iterations.len(), 15);
    assert!(result.corr_before.correlation > 0.99999);
    assert!(
        result.corr_after.correlation > 0.99,
        "drifted too far: {}",
        result.corr_after.correlation
    );
    // The drift is bounded: the average mismatch stays below a gate delay.
    assert!(result.corr_after.avg_abs_ps < 5.0);
}

/// App 2 end to end on one IWLS-scale circuit: both sizers improve TNS;
/// INSTA-Size touches a small fraction of the baseline's cell count
/// (Table II's headline).
#[test]
fn sizers_improve_timing_with_different_cell_budgets() {
    let mut cfg = GeneratorConfig::with_target_pins("app2", 95, 8_000);
    cfg.clock_period_ps = 800.0;

    let mut d_ref = generate_design(&cfg);
    let mut sta_ref = RefSta::new(&d_ref, StaConfig::default()).expect("build");
    let before = sta_ref.full_update(&d_ref);
    assert!(before.n_violations > 0, "need initial violations");
    let r = reference_size(&mut d_ref, &mut sta_ref, &ReferenceSizeConfig::default());

    let mut d_ins = generate_design(&cfg);
    let mut sta_ins = RefSta::new(&d_ins, StaConfig::default()).expect("build");
    let i = insta_size(&mut d_ins, &mut sta_ins, &InstaSizeConfig::default());

    assert!(r.tns_after_ps > r.tns_before_ps, "reference must improve TNS");
    assert!(i.tns_after_ps > i.tns_before_ps, "INSTA-Size must improve TNS");
    assert!(r.cells_sized > 0 && i.cells_sized > 0);
    assert!(
        i.cells_sized * 2 < r.cells_sized,
        "gradient targeting must use far fewer cells: {} vs {}",
        i.cells_sized,
        r.cells_sized
    );
    // Comparable final quality: INSTA-Size within 25% of the TNS the
    // grind-everything baseline recovers.
    let ref_gain = r.tns_after_ps - r.tns_before_ps;
    let ins_gain = i.tns_after_ps - i.tns_before_ps;
    assert!(
        ins_gain > 0.75 * ref_gain,
        "INSTA-Size gain {ins_gain} too far below reference gain {ref_gain}"
    );
}

/// App 3 end to end on a small instance: timing-driven modes improve TNS
/// over the plain wirelength placer; every mode produces a legal
/// placement.
#[test]
fn timing_driven_placement_improves_tns_over_plain() {
    let mut cfg = GeneratorConfig::medium("app3", 99);
    cfg.uniform_endpoint_taps = true;
    cfg.hub_fraction = 0.04;
    cfg.hub_pick_prob = 0.35;
    cfg.clock_period_ps = 4200.0;

    let run = |mode: PlacerMode| {
        let mut design = generate_design(&cfg);
        let pcfg = PlacerConfig {
            iterations: 160,
            seed: 11,
            mode,
            ..PlacerConfig::default()
        };
        place(&mut design, &pcfg)
    };
    let dp = run(PlacerMode::Wirelength);
    let nw = run(PlacerMode::NetWeighting {
        alpha: 1.0,
        beta: 0.5,
    });
    let ip = run(PlacerMode::InstaPlace { lambda_rc: 0.01 });

    for r in [&dp, &nw, &ip] {
        assert!(insta_sta::placer::legalize::is_legal(&r.db));
        assert!(r.hpwl_legal > 0.0 && r.hpwl_legal.is_finite());
        assert!(r.hpwl_global < r.hpwl_init, "global placement must help");
    }
    // INSTA-Place records its refresh breakdowns (Fig. 9 data).
    assert!(!ip.refreshes.is_empty());
    assert!(ip.refreshes.iter().all(|b| b.insta_grad_s > 0.0));
    // Timing feedback must not be catastrophically worse than DP, and at
    // least one timing mode must beat DP when DP violates.
    if dp.tns_legal_ps < -100.0 {
        let best = nw.tns_legal_ps.max(ip.tns_legal_ps);
        assert!(
            best > dp.tns_legal_ps,
            "some timing mode must improve on DP: dp={} nw={} ip={}",
            dp.tns_legal_ps,
            nw.tns_legal_ps,
            ip.tns_legal_ps
        );
    }
}

/// The autograd substrate composes with placement quantities: the tape
/// reproduces the analytic WA-gradient direction on a toy net.
#[test]
fn autograd_matches_analytic_wirelength_gradient() {
    use insta_sta::autograd::Tape;
    // |x0 - x1| via smooth_abs on the tape vs the placer's saturated
    // difference: same sign, comparable magnitude.
    let mut tape = Tape::new();
    let x = tape.leaf(vec![10.0, 4.0]);
    let w = tape.weighted_by(x, vec![1.0, -1.0]);
    let s = tape.sum(w); // x0 - x1
    let d = tape.smooth_abs(s, 1e-3);
    let loss = tape.sum(d);
    tape.backward(loss);
    let g = tape.grad(x);
    assert!(g[0] > 0.99 && g[1] < -0.99, "{g:?}");
}
