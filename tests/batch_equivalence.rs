//! Batched-evaluation equivalence suite (ISSUE 4): `evaluate_batch([d0..dS])`
//! must be **bit-identical**, per scenario, to S independent serial
//! `update_timing` sessions run from the same engine state — across
//! generated designs, batch sizes {1, 2, 7, 16}, serial and parallel
//! runners, CPPR on/off, duplicate-arc delta sets, empty scenarios, and
//! the gradient passes. The batch must also leave the engine's own state
//! (annotations, report, drift odometer) untouched, like S rolled-back
//! sessions.

use insta_engine::{
    BatchOptions, DeltaSet, InstaConfig, InstaEngine, InstaReport, ScenarioReport,
};
use insta_netlist::generator::{generate_design, GeneratorConfig};
use insta_refsta::eco::ArcDelta;
use insta_refsta::{RefSta, StaConfig};
use insta_sta::support::prop::{for_all, Config};
use insta_support::rng::Rng;

const SUITE_SEED: u64 = 0x8A7C_4E01_1;
const BATCH_SIZES: [usize; 4] = [1, 2, 7, 16];

fn build(seed: u64, cfg: InstaConfig) -> (RefSta, InstaEngine) {
    let design = generate_design(&GeneratorConfig::small("batch_eq", seed));
    let mut golden = RefSta::new(&design, StaConfig::default()).expect("build");
    golden.full_update(&design);
    let engine = InstaEngine::new(golden.export_insta_init(), cfg).expect("valid snapshot");
    (golden, engine)
}

/// Every bit of the public report, for exact comparisons.
fn report_bits(r: &InstaReport) -> Vec<u64> {
    let mut bits = vec![r.wns_ps.to_bits(), r.tns_ps.to_bits(), r.n_violations as u64];
    bits.extend(r.slacks.iter().map(|v| v.to_bits()));
    bits.extend(r.arrivals.iter().map(|v| v.to_bits()));
    bits.extend(r.requireds.iter().map(|v| v.to_bits()));
    bits.extend(r.worst_sp.iter().map(|&v| v as u64));
    bits.extend(r.worst_rf.iter().map(|&v| v as u64));
    bits
}

/// Random valid scenarios: in-range arcs, finite means, non-negative
/// sigmas, jittered off the golden delays. Lengths vary and include 0
/// (the base scenario).
fn random_scenarios(golden: &RefSta, rng: &mut Rng, s: usize) -> Vec<DeltaSet> {
    let delays = golden.delays();
    let n_arcs = delays.mean.len() as u64;
    (0..s)
        .map(|_| {
            let len = rng.bounded_u64(6) as usize;
            let deltas = (0..len)
                .map(|_| {
                    let arc = rng.bounded_u64(n_arcs) as u32;
                    let mean = delays.mean[arc as usize];
                    let sigma = delays.sigma[arc as usize];
                    ArcDelta {
                        arc,
                        mean: [
                            mean[0] + rng.next_f64() * 20.0 - 10.0,
                            mean[1] + rng.next_f64() * 20.0 - 10.0,
                        ],
                        sigma: [
                            sigma[0] * (1.0 + rng.next_f64()),
                            sigma[1] * (1.0 + rng.next_f64()),
                        ],
                    }
                })
                .collect();
            DeltaSet { deltas }
        })
        .collect()
}

/// The serial reference: one checkpoint/rollback session per scenario, in
/// order, on a clone of the engine.
fn serial_reference(
    engine: &InstaEngine,
    scenarios: &[DeltaSet],
    gradients: bool,
) -> Vec<(Result<InstaReport, String>, Option<Vec<f64>>)> {
    let mut clone = engine.clone();
    scenarios
        .iter()
        .map(|sc| {
            let mut session = clone.begin_session();
            let mut grads = None;
            let outcome = session.update_timing(&sc.deltas).and_then(|report| {
                if gradients {
                    session.forward_lse()?;
                    session.backward_tns()?;
                    grads = Some(session.engine().arc_gradients());
                }
                Ok(report)
            });
            session.rollback();
            (outcome.map_err(|e| e.category().to_string()), grads)
        })
        .collect()
}

fn assert_batch_matches(
    got: &[ScenarioReport],
    want: &[(Result<InstaReport, String>, Option<Vec<f64>>)],
) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!("{} reports for {} scenarios", got.len(), want.len()));
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        if g.scenario != i {
            return Err(format!("scenario index {} at position {i}", g.scenario));
        }
        match (&g.outcome, &w.0) {
            (Ok(gr), Ok(wr)) => {
                if report_bits(gr) != report_bits(wr) {
                    return Err(format!("scenario {i}: report differs from serial run"));
                }
            }
            (Err(ge), Err(we)) => {
                if ge.category() != we {
                    return Err(format!(
                        "scenario {i}: error category {} vs serial {we}",
                        ge.category()
                    ));
                }
            }
            (Ok(_), Err(we)) => return Err(format!("scenario {i}: Ok, serial failed with {we}")),
            (Err(ge), Ok(_)) => {
                return Err(format!("scenario {i}: {}, serial succeeded", ge.category()))
            }
        }
        match (&g.gradients, &w.1) {
            (Some(gg), Some(wg)) => {
                let gb: Vec<u64> = gg.iter().map(|v| v.to_bits()).collect();
                let wb: Vec<u64> = wg.iter().map(|v| v.to_bits()).collect();
                if gb != wb {
                    return Err(format!("scenario {i}: gradients differ from serial run"));
                }
            }
            (None, None) => {}
            _ => return Err(format!("scenario {i}: gradient presence differs")),
        }
    }
    Ok(())
}

/// The load-bearing property: across generated designs, batch sizes
/// {1, 2, 7, 16}, and serial-vs-parallel runners, every scenario of a
/// batch is bit-identical to its own serial session — and the batch
/// leaves the engine's state bit-untouched.
#[test]
fn batch_is_bit_identical_to_serial_sessions() {
    for_all(
        Config::cases(12).seed(SUITE_SEED),
        |rng| {
            (
                rng.bounded_u64(64),     // design seed
                rng.next_u64(),          // scenario stream
                rng.bounded_u64(4) as usize, // batch-size pick
                rng.bounded_u64(2) as usize, // thread pick
            )
        },
        |&(dseed, stream, size_idx, threads_idx)| {
            let s = BATCH_SIZES[size_idx];
            let n_threads = [1usize, 4][threads_idx];
            let cfg = InstaConfig {
                n_threads,
                ..InstaConfig::default()
            };
            let (golden, mut engine) = build(dseed, cfg);
            engine.propagate();
            let base_bits = report_bits(engine.report());

            let mut rng = Rng::seed_from_u64(stream);
            let scenarios = random_scenarios(&golden, &mut rng, s);
            let want = serial_reference(&engine, &scenarios, false);
            let got = engine.evaluate_batch(&scenarios);
            assert_batch_matches(&got, &want)?;

            // The batch behaves like S rolled-back sessions: the engine's
            // own report is bit-untouched.
            if report_bits(engine.report()) != base_bits {
                return Err("batch mutated the engine's own report".into());
            }
            Ok(())
        },
    );
}

/// Gradient equivalence: `evaluate_batch_with(gradients: true)` returns,
/// per scenario, the exact ∂TNS/∂delay vector a serial session's
/// `forward_lse` + `backward_tns` + `arc_gradients` produces.
#[test]
fn batch_gradients_match_serial_sessions() {
    for &n_threads in &[1usize, 4] {
        let cfg = InstaConfig {
            n_threads,
            ..InstaConfig::default()
        };
        let (golden, mut engine) = build(21, cfg);
        engine.propagate();
        let mut rng = Rng::seed_from_u64(SUITE_SEED ^ 0x66AD);
        let scenarios = random_scenarios(&golden, &mut rng, 7);
        let want = serial_reference(&engine, &scenarios, true);
        let got = engine.evaluate_batch_with(
            &scenarios,
            &BatchOptions {
                gradients: true,
                ..BatchOptions::default()
            },
        );
        assert_batch_matches(&got, &want).expect("gradient equivalence");
        assert!(got.iter().all(|r| r.gradients.is_some()));
    }
}

/// Duplicate-arc delta sets (last write wins, like `reannotate`) and the
/// empty delta set (the base scenario) both match their serial runs.
#[test]
fn duplicate_arcs_and_empty_scenarios_match_serial() {
    let (golden, mut engine) = build(33, InstaConfig::default());
    engine.propagate();
    let delays = golden.delays();
    let arc = (delays.mean.len() / 2) as u32;
    let mean = delays.mean[arc as usize];
    let sigma = delays.sigma[arc as usize];
    let scenarios = vec![
        DeltaSet::default(),
        DeltaSet::from(vec![
            ArcDelta {
                arc,
                mean: [mean[0] + 40.0, mean[1] + 40.0],
                sigma,
            },
            // Second delta to the same arc must win, exactly like two
            // sequential re-annotations.
            ArcDelta {
                arc,
                mean: [mean[0] + 3.0, mean[1] + 5.0],
                sigma: [sigma[0] * 2.0, sigma[1] * 2.0],
            },
        ]),
    ];
    let want = serial_reference(&engine, &scenarios, false);
    let got = engine.evaluate_batch(&scenarios);
    assert_batch_matches(&got, &want).expect("duplicate/empty equivalence");
    // The empty scenario reproduces the base report exactly.
    let base = report_bits(engine.report());
    let empty = report_bits(got[0].outcome.as_ref().expect("base scenario"));
    assert_eq!(empty, base);
}

/// CPPR off must flow through the batched path the same way it flows
/// through the serial one.
#[test]
fn batch_matches_serial_with_cppr_disabled() {
    let cfg = InstaConfig {
        cppr: false,
        ..InstaConfig::default()
    };
    let (golden, mut engine) = build(45, cfg);
    engine.propagate();
    let mut rng = Rng::seed_from_u64(SUITE_SEED ^ 0x3355);
    let scenarios = random_scenarios(&golden, &mut rng, 7);
    let want = serial_reference(&engine, &scenarios, false);
    let got = engine.evaluate_batch(&scenarios);
    assert_batch_matches(&got, &want).expect("no-CPPR equivalence");
}

/// Batches wider than one lane chunk (64 scenarios) are processed in
/// chunks and still match scenario-for-scenario.
#[test]
fn batches_wider_than_a_lane_chunk_match_serial() {
    let (golden, mut engine) = build(57, InstaConfig::default());
    engine.propagate();
    let mut rng = Rng::seed_from_u64(SUITE_SEED ^ 0x7070);
    let scenarios = random_scenarios(&golden, &mut rng, 70);
    let want = serial_reference(&engine, &scenarios, false);
    let got = engine.evaluate_batch(&scenarios);
    assert_batch_matches(&got, &want).expect("chunked equivalence");
}

/// A batch on a drift-exhausted engine routes scenarios through the
/// degraded serial path and still matches the serial reference.
#[test]
fn drift_exhausted_batches_match_serial() {
    let cfg = InstaConfig {
        drift_policy: insta_engine::DriftPolicy {
            max_updates: 1,
            ..insta_engine::DriftPolicy::default()
        },
        ..InstaConfig::default()
    };
    let (golden, mut engine) = build(63, cfg);
    engine.propagate();
    let mut rng = Rng::seed_from_u64(SUITE_SEED ^ 0xD21F);
    // Exhaust the drift budget so every scenario would degrade serially.
    let warm = random_scenarios(&golden, &mut rng, 1);
    engine.reannotate(&warm[0].deltas).expect("valid warm-up deltas");
    engine.propagate();
    assert!(engine.drift_exceeded() || engine.counters().drift_updates >= 1);

    let scenarios = random_scenarios(&golden, &mut rng, 4);
    let want = serial_reference(&engine, &scenarios, false);
    let got = engine.evaluate_batch(&scenarios);
    assert_batch_matches(&got, &want).expect("degraded-path equivalence");
}

/// Counter accounting on the degraded batch path (ISSUE 5 satellite):
/// a batch on a drift-exhausted engine routes its scenarios through real
/// checkpoint/rollback sessions, and each such session must bump
/// `incremental_updates` and `degraded_passes` exactly once per scenario
/// while the drift odometer (`drift_updates` / `drift_mass`) is restored
/// by the rollback — the batch as a whole leaves it bit-untouched.
#[test]
fn degraded_batch_accounting_is_exact_and_drift_neutral() {
    let cfg = InstaConfig {
        drift_policy: insta_engine::DriftPolicy {
            max_updates: 1,
            ..insta_engine::DriftPolicy::default()
        },
        ..InstaConfig::default()
    };
    let (golden, mut engine) = build(77, cfg);
    engine.propagate();
    let mut rng = Rng::seed_from_u64(SUITE_SEED ^ 0x5EED);
    // Exhaust the drift budget so every batch scenario degrades.
    let warm = random_scenarios(&golden, &mut rng, 1);
    engine.reannotate(&warm[0].deltas).expect("valid warm-up deltas");
    engine.propagate();
    assert!(engine.drift_exceeded());

    let scenarios = random_scenarios(&golden, &mut rng, 3);
    let before = engine.counters();
    let got = engine.evaluate_batch(&scenarios);
    let after = engine.counters();
    let succeeded = got.iter().filter(|r| r.outcome.is_ok()).count() as u64;
    assert_eq!(succeeded, 3, "all degraded scenarios should evaluate");
    // Exactly one degraded pass and one incremental update per scenario —
    // no double-counting from the session wrapper or the health gate.
    assert_eq!(after.degraded_passes, before.degraded_passes + 3);
    assert_eq!(after.incremental_updates, before.incremental_updates + 3);
    // The drift odometer is checkpointed state: the rolled-back sessions
    // restore it bit-exactly, so the batch is drift-neutral.
    assert_eq!(after.drift_updates, before.drift_updates);
    assert_eq!(after.drift_mass.to_bits(), before.drift_mass.to_bits());
    // And the engine still reports the pre-existing exhaustion.
    assert!(engine.drift_exceeded());
}

/// Batch counters are monotonic and quarantine-aware.
#[test]
fn batch_counters_account_for_every_scenario() {
    let (golden, mut engine) = build(71, InstaConfig::default());
    engine.propagate();
    let mut rng = Rng::seed_from_u64(SUITE_SEED ^ 0xC0C0);
    let mut scenarios = random_scenarios(&golden, &mut rng, 5);
    // One invalid scenario: out-of-range arc id → validation quarantine.
    scenarios[2] = DeltaSet::from(vec![ArcDelta {
        arc: u32::MAX - 1,
        mean: [1.0, 1.0],
        sigma: [0.1, 0.1],
    }]);
    let before = engine.counters();
    let got = engine.evaluate_batch(&scenarios);
    let after = engine.counters();
    assert_eq!(after.batches, before.batches + 1);
    assert_eq!(after.batch_scenarios, before.batch_scenarios + 5);
    assert_eq!(after.batch_quarantined, before.batch_quarantined + 1);
    assert!(got[2].outcome.is_err());
    assert_eq!(got.iter().filter(|r| r.outcome.is_ok()).count(), 4);
}
