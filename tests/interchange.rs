//! Cross-crate integration tests for the interchange front ends: the full
//! (Verilog, SPEF, SDC, snapshot) loop a downstream flow would run.

use insta_sta::engine::{InstaConfig, InstaEngine, MismatchStats};
use insta_sta::netlist::generator::{generate_design, GeneratorConfig};
use insta_sta::netlist::spef::{annotate_spef, write_spef};
use insta_sta::netlist::verilog::{parse_verilog, write_verilog};
use insta_sta::refsta::export::{load_init, save_init};
use insta_sta::refsta::sdc::apply_sdc;
use insta_sta::refsta::{RefSta, StaConfig};

/// Verilog + SPEF reconstruct a design whose reference timing matches the
/// original *exactly*, endpoint for endpoint.
#[test]
fn verilog_spef_round_trip_is_timing_exact() {
    let mut cfg = GeneratorConfig::medium("ix", 51);
    cfg.clock_period_ps = 520.0;
    let original = generate_design(&cfg);
    let vl = write_verilog(&original);
    let spef = write_spef(&original);

    let mut rebuilt = parse_verilog(&vl, original.library_arc(), "clk", 520.0)
        .expect("verilog parses");
    let annotated = annotate_spef(&mut rebuilt, &spef).expect("spef annotates");
    assert_eq!(annotated, rebuilt.nets().len(), "every net annotated");

    let mut sta_a = RefSta::new(&original, StaConfig::default()).expect("build a");
    let mut sta_b = RefSta::new(&rebuilt, StaConfig::default()).expect("build b");
    let ra = sta_a.full_update(&original);
    let rb = sta_b.full_update(&rebuilt);
    assert_eq!(ra.endpoints.len(), rb.endpoints.len());
    // Endpoint identity can be permuted by parsing order; compare sorted
    // slack vectors (they must be identical multisets) and the design
    // metrics exactly.
    let mut sa: Vec<f64> = ra.endpoints.iter().map(|e| e.slack_ps).collect();
    let mut sb: Vec<f64> = rb.endpoints.iter().map(|e| e.slack_ps).collect();
    sa.sort_by(f64::total_cmp);
    sb.sort_by(f64::total_cmp);
    for (a, b) in sa.iter().zip(&sb) {
        assert!(
            (a - b).abs() < 1e-9 || (!a.is_finite() && !b.is_finite()),
            "slack mismatch {a} vs {b}"
        );
    }
    assert!((ra.wns_ps - rb.wns_ps).abs() < 1e-9);
    assert!((ra.tns_ps - rb.tns_ps).abs() < 1e-9);
}

/// The INSTA snapshot written from a rebuilt (Verilog+SPEF) design drives
/// an engine that matches the original design's reference slacks.
#[test]
fn snapshot_from_rebuilt_design_matches_original_reference() {
    let mut cfg = GeneratorConfig::small("ix2", 53);
    cfg.clock_period_ps = 300.0;
    let original = generate_design(&cfg);
    let vl = write_verilog(&original);
    let spef = write_spef(&original);
    let mut rebuilt =
        parse_verilog(&vl, original.library_arc(), "clk", 300.0).expect("verilog");
    annotate_spef(&mut rebuilt, &spef).expect("spef");

    let mut sta = RefSta::new(&rebuilt, StaConfig::default()).expect("build");
    sta.full_update(&rebuilt);
    let path = std::env::temp_dir().join("insta_ix_snapshot.json");
    save_init(&sta.export_insta_init(), &path).expect("save");
    let mut engine = InstaEngine::new(load_init(&path).expect("load"), InstaConfig::default()).expect("valid snapshot");
    let report = engine.propagate().clone();
    std::fs::remove_file(&path).ok();

    // Reference view of the *original* design.
    let mut sta_orig = RefSta::new(&original, StaConfig::default()).expect("build");
    let orig = sta_orig.full_update(&original);
    let mut a: Vec<f64> = report.slacks.clone();
    let mut b: Vec<f64> = orig.endpoints.iter().map(|e| e.slack_ps).collect();
    a.sort_by(f64::total_cmp);
    b.sort_by(f64::total_cmp);
    let finite: (Vec<f64>, Vec<f64>) = a
        .iter()
        .zip(&b)
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .map(|(&x, &y)| (x, y))
        .unzip();
    let stats = MismatchStats::compute(&finite.0, &finite.1);
    assert!(stats.worst_abs_ps < 1e-9, "snapshot chain drifted: {stats}");
}

/// Saving and reloading a snapshot is lossless: an engine built from the
/// reloaded init re-propagates to bit-identical endpoint slacks.
#[test]
fn snapshot_reload_repropagates_bit_identically() {
    let mut cfg = GeneratorConfig::medium("ix4", 61);
    cfg.clock_period_ps = 480.0;
    let design = generate_design(&cfg);
    let mut sta = RefSta::new(&design, StaConfig::default()).expect("build");
    sta.full_update(&design);
    let init = sta.export_insta_init();

    let path = std::env::temp_dir().join("insta_ix4_snapshot.json");
    save_init(&init, &path).expect("save");
    let reloaded = load_init(&path).expect("load");
    std::fs::remove_file(&path).ok();

    let mut direct = InstaEngine::new(init, InstaConfig::default()).expect("valid snapshot");
    let mut via_disk = InstaEngine::new(reloaded, InstaConfig::default()).expect("valid snapshot");
    let ra = direct.propagate();
    let rb = via_disk.propagate();
    assert_eq!(ra.slacks.len(), rb.slacks.len());
    assert!(!ra.slacks.is_empty());
    for (i, (a, b)) in ra.slacks.iter().zip(&rb.slacks).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "endpoint {i}: {a} vs {b}");
    }
    assert_eq!(ra.wns_ps.to_bits(), rb.wns_ps.to_bits());
    assert_eq!(ra.tns_ps.to_bits(), rb.tns_ps.to_bits());
}

/// Malformed snapshots — valid JSON with the wrong shape, not just garbage
/// bytes — are reported as format errors rather than panicking or loading
/// a half-initialised engine.
#[test]
fn malformed_snapshots_report_format_errors() {
    use insta_sta::refsta::export::SnapshotError;
    let cases: &[(&str, &str)] = &[
        ("empty object", "{}"),
        ("wrong root type", "[1, 2, 3]"),
        ("field with wrong type", r#"{"period_ps": "fast"}"#),
        ("truncated document", r#"{"period_ps": 500.0, "#),
        ("trailing garbage", r#"{} {}"#),
    ];
    for (label, text) in cases {
        let path = std::env::temp_dir().join(format!(
            "insta_ix4_bad_{}.json",
            label.replace(' ', "_")
        ));
        std::fs::write(&path, text).expect("write");
        let err = load_init(&path).expect_err(label);
        std::fs::remove_file(&path).ok();
        assert!(
            matches!(err, SnapshotError::Format(_)),
            "{label}: expected Format error, got {err:?}"
        );
    }
    let missing = std::env::temp_dir().join("insta_ix4_definitely_missing.json");
    let err = load_init(&missing).expect_err("missing file");
    assert!(matches!(err, SnapshotError::Io(_)), "got {err:?}");
}

/// SDC constraints applied to a rebuilt design behave identically to the
/// same constraints on the original.
#[test]
fn sdc_is_stable_across_the_interchange() {
    let mut cfg = GeneratorConfig::small("ix3", 57);
    cfg.clock_period_ps = 300.0;
    let original = generate_design(&cfg);
    let vl = write_verilog(&original);
    let spef = write_spef(&original);
    let mut rebuilt =
        parse_verilog(&vl, original.library_arc(), "clk", 300.0).expect("verilog");
    annotate_spef(&mut rebuilt, &spef).expect("spef");

    let sdc = "create_clock -name core -period 5000 [get_ports clk]\nset_input_delay 100 [all_inputs]\n";
    let run = |design: &insta_sta::netlist::Design| -> (f64, f64) {
        let mut sta = RefSta::new(design, StaConfig::default()).expect("build");
        sta.full_update(design);
        apply_sdc(&mut sta, design, sdc).expect("sdc");
        let r = sta.full_update(design);
        (r.wns_ps, r.tns_ps)
    };
    let (wns_a, tns_a) = run(&original);
    let (wns_b, tns_b) = run(&rebuilt);
    assert!((wns_a - wns_b).abs() < 1e-9, "{wns_a} vs {wns_b}");
    assert!((tns_a - tns_b).abs() < 1e-9);
}
